"""Insertion and split policies (Sections 5.2-5.3).

Insertion must choose which child subtree receives a new graph; splitting
must partition an overflowing node's children into two groups.  The paper
lists three options for each and picks *minimum volume increase* for
insertion and *linear pivot-based partitioning* for splits as the
quality/time trade-off; both defaults are implemented here alongside the
alternatives, which the ablation benchmarks exercise.
"""

from __future__ import annotations

import itertools
import random
from typing import Callable, Sequence

from repro.exceptions import ConfigError
from repro.graphs.closure import GraphClosure, GraphLike
from repro.ctree.node import Child, CTreeNode, Mapper

InsertPolicy = Callable[..., int]
SplitPolicy = Callable[..., tuple[list[int], list[int]]]


# ----------------------------------------------------------------------
# Insertion: choose a child index for a new graph
# ----------------------------------------------------------------------
def choose_child_random(
    node: CTreeNode, graph: GraphLike, mapper: Mapper, rng: random.Random
) -> int:
    """Uniformly random child."""
    return rng.randrange(node.fanout)


def choose_child_min_volume(
    node: CTreeNode, graph: GraphLike, mapper: Mapper, rng: random.Random
) -> int:
    """The child whose closure grows the least in (log-)volume when the
    graph is added — the paper's default (linear in the fanout)."""
    best_index, best_increase = 0, float("inf")
    for i, child in enumerate(node.children):
        closure = CTreeNode.child_closure(child)
        enlarged = mapper(closure, graph).closure()
        increase = enlarged.log_volume() - closure.log_volume()
        if increase < best_increase:
            best_index, best_increase = i, increase
    return best_index


def choose_child_min_overlap(
    node: CTreeNode, graph: GraphLike, mapper: Mapper, rng: random.Random
) -> int:
    """The child whose enlargement least increases its similarity overlap
    with its siblings (quadratic in the fanout)."""
    closures = [CTreeNode.child_closure(c) for c in node.children]
    best_index, best_increase = 0, float("inf")
    for i, closure in enumerate(closures):
        enlarged = mapper(closure, graph).closure()
        increase = 0.0
        for j, other in enumerate(closures):
            if j == i:
                continue
            before = mapper(closure, other).similarity()
            after = mapper(enlarged, other).similarity()
            increase += after - before
        if increase < best_increase:
            best_index, best_increase = i, increase
    return best_index


INSERT_POLICIES: dict[str, InsertPolicy] = {
    "random": choose_child_random,
    "min_volume": choose_child_min_volume,
    "min_overlap": choose_child_min_overlap,
}


# ----------------------------------------------------------------------
# Splitting: partition child indices into two groups
# ----------------------------------------------------------------------
def split_random(
    children: Sequence[Child],
    mapper: Mapper,
    rng: random.Random,
    min_fanout: int,
) -> tuple[list[int], list[int]]:
    """Random even partition."""
    indices = list(range(len(children)))
    rng.shuffle(indices)
    half = len(indices) // 2
    return (indices[:half], indices[half:])


def split_linear(
    children: Sequence[Child],
    mapper: Mapper,
    rng: random.Random,
    min_fanout: int,
) -> tuple[list[int], list[int]]:
    """Linear pivot partitioning (the paper's default, FastMap-inspired).

    1. pick a random child g0;
    2. g1 := farthest child from g0 (closure distance);
    3. g2 := farthest child from g1 — (g1, g2) is the pivot;
    4. sort children by ``d(gi, g1) - d(gi, g2)`` and cut in half.

    Cost: 3 distance sweeps, i.e. linear in the fanout.
    """
    closures = [CTreeNode.child_closure(c) for c in children]

    def distance(a: GraphClosure, b: GraphClosure) -> float:
        return mapper(a, b).edit_cost()

    g0 = rng.randrange(len(closures))
    d0 = [distance(c, closures[g0]) for c in closures]
    g1 = max(range(len(closures)), key=lambda i: d0[i])
    d1 = [distance(c, closures[g1]) for c in closures]
    g2 = max(range(len(closures)), key=lambda i: d1[i])
    d2 = [distance(c, closures[g2]) for c in closures]

    order = sorted(range(len(closures)), key=lambda i: d1[i] - d2[i])
    half = len(order) // 2
    return (order[:half], order[half:])


def split_optimal(
    children: Sequence[Child],
    mapper: Mapper,
    rng: random.Random,
    min_fanout: int,
) -> tuple[list[int], list[int]]:
    """Exhaustive partitioning minimizing the sum of group (log-)volumes.

    Exponential in the fanout; refuse beyond 16 children.  Provided for the
    ablation study and for correctness tests on tiny trees.
    """
    n = len(children)
    if n > 16:
        raise ConfigError(f"optimal split limited to 16 children, got {n}")
    closures = [CTreeNode.child_closure(c) for c in children]

    def group_log_volume(indices: tuple[int, ...]) -> float:
        closure = closures[indices[0]].copy()
        for i in indices[1:]:
            closure = mapper(closure, closures[i]).closure()
        return closure.log_volume()

    best: tuple[list[int], list[int]] | None = None
    best_cost = float("inf")
    lower = max(min_fanout, 1)
    indices = list(range(n))
    # Fix index 0 in the first group to halve the symmetric search space.
    for size in range(lower, n - lower + 1):
        for combo in itertools.combinations(indices[1:], size - 1):
            group1 = (0, *combo)
            group2 = tuple(i for i in indices if i not in group1)
            if len(group2) < lower:
                continue
            cost = group_log_volume(group1) + group_log_volume(group2)
            if cost < best_cost:
                best_cost = cost
                best = (list(group1), list(group2))
    if best is None:
        raise ConfigError(
            f"cannot split {n} children with min_fanout={min_fanout}"
        )
    return best


SPLIT_POLICIES: dict[str, SplitPolicy] = {
    "random": split_random,
    "linear": split_linear,
    "optimal": split_optimal,
}


def resolve_insert_policy(name: str) -> InsertPolicy:
    try:
        return INSERT_POLICIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown insert policy {name!r}; choose from {sorted(INSERT_POLICIES)}"
        ) from None


def resolve_split_policy(name: str) -> SplitPolicy:
    try:
        return SPLIT_POLICIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown split policy {name!r}; choose from {sorted(SPLIT_POLICIES)}"
        ) from None
