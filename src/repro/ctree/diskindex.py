"""Disk-backed C-tree (the paper's advantage #4).

"Dynamic insertion/deletion and disk-based access of graphs can be done
efficiently" — this module materializes a built C-tree into a page file
(one record per node, one per graph) and answers subgraph queries by
reading nodes on demand through an LRU buffer pool.  The interesting
quantity is page I/O per query as a function of cache capacity, which
``benchmarks/bench_ablation_diskio.py`` sweeps.

The index is crash-safe by default: a sidecar write-ahead log
(``index.ctp.wal``) makes :meth:`DiskCTree.create` and
:meth:`DiskCTree.append` atomic — after a crash,
:meth:`DiskCTree.recover` (or opening with ``auto_recover=True``)
replays the log to the last committed generation and
:meth:`DiskCTree.fsck` validates the result (checksums, page
accounting, closure containment).  See ``docs/DURABILITY.md``.

Appends are **incremental** (the paper's Section 5 dynamic insertion,
run directly against the stored records): each new graph descends the
tree via the configured insert policy, enlarges the closures on its
root-to-leaf path in place, and splits overflowing nodes with the
configured split policy — dirtying only that path plus any split
siblings, never the rest of the tree.  A whole :meth:`extend` batch is
**group-committed**: one WAL flush and one fsync close the batch, so
append cost stays flat as the database grows (``ctree.disk.rebuilds``
stays 0; the old full rebuild survives behind ``rebuild=True``).

Deletes are incremental too (Section 5.4 against the stored records):
:meth:`delete` / :meth:`delete_many` remove the leaf entry, shrink or
keep each ancestor closure (recomputing only where the removed graph
was load-bearing), and resolve underflow bottom-up by merging into or
redistributing with a policy-chosen sibling — again one group commit
per batch, freed pages returned to the free list.  A tree that churn
has hollowed out is repacked by :meth:`compact`, which fires
automatically when leaf occupancy or height degrades past the
configured thresholds (``ctree.disk.compactions``).

Usage::

    tree = bulk_load(graphs, ...)
    with DiskCTree.create(tree, "index.ctp", cache_pages=128) as disk:
        answers, stats = disk.subgraph_query(query)
        print(stats.page_misses, stats.page_hits)

    with DiskCTree.open("index.ctp") as disk:   # later, cold
        disk.append(more_graphs)
"""

from __future__ import annotations

import json
import random
import struct
import time
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.exceptions import ChecksumError, IndexError_, PersistenceError
from repro.graphs.closure import GraphClosure, as_closure
from repro.graphs.graph import Graph
from repro.graphs.histogram import LabelHistogram
from repro.graphs.labelspace import target_context
from repro.matching import kernels
from repro.matching.bounds import SimilarityQueryContext
from repro.matching.edit_distance import MAPPING_METHODS
from repro.matching.pseudo_iso import (
    Level,
    global_semi_perfect,
    pseudo_compatibility_domains,
)
from repro.matching.ullmann import subgraph_isomorphic
from repro.obs import trace
from repro.obs.metrics import global_registry
from repro.ctree.node import (
    CTreeNode,
    LeafEntry,
    fold_closure,
    fold_closure_set,
)
from repro.ctree.policies import (
    choose_merge_sibling,
    resolve_closure_split_policy,
    resolve_fold_choice_policy,
)
from repro.ctree.stats import CounterField, KnnStats, QueryStats
from repro.ctree.tree import CTree
from repro.storage.bufferpool import BufferPool
from repro.storage.pagefile import NO_PAGE, PageFile, PathLike
from repro.storage.recordstore import RecordStore
from repro.storage.wal import (
    RecoveryReport,
    WriteAheadLog,
    needs_recovery,
    recover as storage_recover,
    wal_path,
)

_FORMAT = 2

_U64 = struct.Struct("<Q")

#: Compaction fires when live entries fill less than this fraction of
#: the leaf level's capacity (``graph_count / (leaf_count * max_fanout)``).
DEFAULT_MIN_OCCUPANCY = 0.4

#: ... or when the tree stands more than this many levels above the
#: height a fresh bulk load of the same graph count would reach.
DEFAULT_HEIGHT_SLACK = 1


class DiskQueryStats(QueryStats):
    """Query counters plus buffer-pool I/O deltas."""

    page_hits = CounterField("ctree.query.page_hits")
    page_misses = CounterField("ctree.query.page_misses")

    _COUNTER_FIELDS = QueryStats._COUNTER_FIELDS + ("page_hits",
                                                    "page_misses")
    # Page I/O depends on buffer-pool temperature, which depends on the
    # execution schedule — excluded from determinism comparisons.
    _NONDETERMINISTIC_KEYS = QueryStats._NONDETERMINISTIC_KEYS + (
        "page_hits", "page_misses")

    def __init__(self, page_hits: int = 0, page_misses: int = 0,
                 **kwargs) -> None:
        super().__init__(**kwargs)
        self.page_hits = page_hits
        self.page_misses = page_misses

    @property
    def page_hit_ratio(self) -> float:
        """Fraction of page reads served from the buffer pool."""
        total = self.page_hits + self.page_misses
        return self.page_hits / total if total else 0.0


class DiskKnnStats(KnnStats):
    """K-NN counters plus buffer-pool I/O deltas."""

    page_hits = CounterField("ctree.knn.page_hits")
    page_misses = CounterField("ctree.knn.page_misses")

    _COUNTER_FIELDS = KnnStats._COUNTER_FIELDS + ("page_hits",
                                                  "page_misses")
    _NONDETERMINISTIC_KEYS = KnnStats._NONDETERMINISTIC_KEYS + (
        "page_hits", "page_misses")

    def __init__(self, page_hits: int = 0, page_misses: int = 0,
                 **kwargs) -> None:
        super().__init__(**kwargs)
        self.page_hits = page_hits
        self.page_misses = page_misses

    @property
    def page_hit_ratio(self) -> float:
        """Fraction of page reads served from the buffer pool."""
        total = self.page_hits + self.page_misses
        return self.page_hits / total if total else 0.0


@dataclass
class FsckReport:
    """What :meth:`DiskCTree.fsck` found, machine-readable for tests and
    the CLI.  ``errors`` are integrity violations (``clean`` is their
    absence); ``notes`` are benign observations."""

    path: str
    deep: bool = False
    errors: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    pages: int = 0
    reachable_pages: int = 0
    free_pages: int = 0
    nodes: int = 0
    leaves: int = 0
    graphs: int = 0
    generation: int = 0

    @property
    def clean(self) -> bool:
        """Whether no integrity violations were found."""
        return not self.errors

    def issue(self, message: str) -> None:
        """Record one integrity violation."""
        self.errors.append(message)

    def summary(self) -> str:
        """Human-readable one-liner of the check result."""
        status = "clean" if self.clean else \
            f"{len(self.errors)} error(s) found"
        parts = [
            f"{self.path}: {status}",
            f"{self.pages} pages ({self.reachable_pages} reachable, "
            f"{self.free_pages} free)",
            f"{self.nodes} nodes, {self.graphs} graphs, "
            f"generation {self.generation}",
        ]
        if self.deep:
            parts.append("deep closure checks on")
        return ", ".join(parts)


@dataclass
class DiskRecovery:
    """Combined result of :meth:`DiskCTree.recover`: the storage-level
    WAL replay plus the post-recovery integrity check."""

    storage: RecoveryReport
    fsck: Optional[FsckReport] = None

    @property
    def ok(self) -> bool:
        """Whether recovery landed on a valid committed state."""
        if not self.storage.initialized:
            # No committed index ever existed; there is nothing to
            # validate, and nothing was lost.
            return True
        return self.fsck is None or self.fsck.clean

    def summary(self) -> str:
        """Storage replay summary plus the fsck one-liner."""
        lines = [self.storage.summary()]
        if self.fsck is not None:
            lines.append(self.fsck.summary())
        return "\n".join(lines)


class DiskCTree:
    """A page-resident C-tree: queries read records on demand, and
    (when WAL-backed) batches of graphs can be appended crash-safely."""

    def __init__(self, store: RecordStore, meta: dict,
                 path: Optional[PathLike] = None) -> None:
        self._store = store
        self._meta = meta
        self._path = path
        self._closed = False
        #: Compaction-trigger knobs (see :meth:`compaction_needed`),
        #: per handle so a long-lived writer can tune how eagerly
        #: ``auto_compact`` repacks its churn.
        self.min_occupancy = DEFAULT_MIN_OCCUPANCY
        self.height_slack = DEFAULT_HEIGHT_SLACK

    # ------------------------------------------------------------------
    # Construction / opening
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        tree: CTree,
        path: PathLike,
        page_size: int = 4096,
        cache_pages: int = 128,
        wal: bool = True,
        opener=None,
    ) -> "DiskCTree":
        """Materialize a built (in-memory) C-tree into a page file.

        With ``wal=True`` (default) a sidecar write-ahead log makes the
        index crash-safe: the create itself and every later
        :meth:`append` become durable atomically at their closing
        checkpoint, and :meth:`recover` restores the last committed
        state after a crash.  ``wal=False`` keeps the seed's direct
        write-back (faster, throwaway indexes only).
        """
        pagefile = PageFile.create(path, page_size=page_size, opener=opener)
        log = None
        if wal:
            log = WriteAheadLog.create(
                wal_path(path), page_size,
                start_lsn=pagefile.last_lsn + 1, opener=opener,
            )
        pool = BufferPool(pagefile, capacity=cache_pages, wal=log)
        store = RecordStore(pool)
        meta, meta_record = cls._write_tree(store, tree, generation=1)
        pagefile.user_root = meta_record
        pool.flush()
        return cls(store, meta, path=path)

    @classmethod
    def open(
        cls,
        path: PathLike,
        cache_pages: int = 128,
        wal: bool = True,
        opener=None,
        auto_recover: bool = True,
    ) -> "DiskCTree":
        """Open an existing disk index (cold cache).

        If the sidecar WAL holds records, the previous session crashed
        mid-update; with ``auto_recover=True`` (default) the log is
        replayed to the last committed state before the index is read,
        otherwise opening fails.
        """
        if needs_recovery(path):
            if not auto_recover:
                raise PersistenceError(
                    f"{path}: write-ahead log contains records; run "
                    f"DiskCTree.recover (or `repro recover`) first"
                )
            storage_recover(path, opener=opener)
        pagefile = PageFile.open(path, opener=opener)
        log = None
        if wal:
            log = WriteAheadLog.open_or_create(
                wal_path(path), pagefile.page_size,
                start_lsn=pagefile.last_lsn + 1, opener=opener,
            )
        pool = BufferPool(pagefile, capacity=cache_pages, wal=log)
        store = RecordStore(pool)
        meta_record = pagefile.user_root
        if meta_record == 0:
            pool.close()
            raise PersistenceError(f"{path}: no index metadata")
        try:
            meta = json.loads(store.load(meta_record).decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError,
                PersistenceError) as exc:
            pool.close()
            raise PersistenceError(f"{path}: corrupt metadata: {exc}") from exc
        if meta.get("format") != _FORMAT:
            pool.close()
            raise PersistenceError(
                f"{path}: unsupported format {meta.get('format')!r}"
            )
        return cls(store, meta, path=path)

    @staticmethod
    def _write_tree(store: RecordStore, tree: CTree, generation: int,
                    next_id: Optional[int] = None) -> tuple[dict, int]:
        """Write every node and graph of ``tree`` as records; returns
        ``(meta, meta_record_id)``.  Nothing is durable until the
        enclosing checkpoint.  ``next_id`` overrides the id watermark
        recorded in the metadata (a compaction preserves the old
        watermark so freed ids are never reissued)."""
        leaves = 0

        def write_node(node: CTreeNode) -> int:
            nonlocal leaves
            record: dict = {"leaf": node.is_leaf}
            if node.closure is not None:
                record["closure"] = node.closure.to_dict()
            if node.is_leaf:
                leaves += 1
                graphs = []
                for child in node.children:
                    assert isinstance(child, LeafEntry)
                    graph_record = store.store(
                        json.dumps(child.graph.to_dict(),
                                   separators=(",", ":")).encode("utf-8")
                    )
                    graphs.append([child.graph_id, graph_record])
                record["graphs"] = graphs
            else:
                record["children"] = [
                    write_node(child)
                    for child in node.children
                    if isinstance(child, CTreeNode)
                ]
            return store.store(
                json.dumps(record, separators=(",", ":")).encode("utf-8")
            )

        root_record = write_node(tree.root)
        if next_id is None:
            next_id = 1 + max(
                (e.graph_id for e in tree.root.iter_leaf_entries()),
                default=-1,
            )
        meta = {
            "format": _FORMAT,
            "root": root_record,
            "graph_count": len(tree),
            "next_id": next_id,
            "height": tree.height(),
            "leaf_count": leaves,
            "generation": generation,
            "config": {
                "min_fanout": tree.min_fanout,
                "max_fanout": tree.max_fanout,
                "mapping_method": tree.mapping_method,
                "insert_policy": tree.insert_policy_name,
                "split_policy": tree.split_policy_name,
            },
        }
        meta_record = store.store(
            json.dumps(meta, separators=(",", ":")).encode("utf-8")
        )
        return meta, meta_record

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def append(self, graphs: Iterable[Graph], seed: int = 0,
               rebuild: bool = False) -> list[int]:
        """Add graphs one logical batch at a time (alias of
        :meth:`extend`, kept for the historical API).

        Historically every call rebuilt the whole index, so an append
        loop paid one rebuild per graph; appends are now incremental
        and an append loop costs one root-to-leaf path per graph.  The
        deprecated rebuild behavior survives behind ``rebuild=True``.
        """
        return self.extend(graphs, seed=seed, rebuild=rebuild)

    def extend(self, graphs: Iterable[Graph], seed: int = 0,
               rebuild: bool = False) -> list[int]:
        """Add a batch of graphs incrementally under **one** group
        commit; returns their new graph ids.

        Each graph descends the stored tree via the configured insert
        policy (Section 5.2), its root-to-leaf path closures are
        enlarged in place, and overflowing nodes are split with the
        configured split policy (Section 5.3) — splits dirty only the
        path and the new sibling records, and split pages come from the
        free list before the file grows.  The whole batch then becomes
        durable at a single closing checkpoint (one WAL commit + one
        fsync — the *group commit*): a crash at any earlier point
        recovers to the previous generation intact.

        Counters: each graph bumps ``ctree.disk.incremental_inserts``,
        each node split ``ctree.disk.splits``, each committed batch
        ``ctree.disk.group_commits``.  ``ctree.disk.rebuilds`` stays 0
        on this path; ``rebuild=True`` forces the legacy full rebuild
        (re-bulk-load of every stored graph — kept as an escape hatch
        for re-packing a degraded tree) which is what that counter
        tracks.
        """
        self._check_open()
        new_graphs = list(graphs)
        if not new_graphs:
            return []
        if rebuild:
            return self._extend_rebuild(new_graphs, seed)
        reg = global_registry()
        config = self._meta.get("config", {})
        mapper = MAPPING_METHODS[config.get("mapping_method", "nbm")]
        choose = resolve_fold_choice_policy(
            config.get("insert_policy", "min_volume"))
        partition = resolve_closure_split_policy(
            config.get("split_policy", "linear"))
        min_fanout = config.get("min_fanout", 20)
        max_fanout = config.get("max_fanout") or 2 * min_fanout - 1
        rng = random.Random(seed)
        # New ids come from the monotone watermark, not the live count:
        # after deletes the live ids are sparse and the count would
        # collide with a surviving graph.
        first_new = self._next_id_watermark()
        self._ensure_leaf_count()
        inserts = reg.counter("ctree.disk.incremental_inserts")
        generation = self._meta.get("generation", 1) + 1
        with trace.span("ctree.disk.extend", graphs=len(new_graphs),
                        generation=generation):
            for offset, graph in enumerate(new_graphs):
                self._insert_one(first_new + offset, graph, mapper, choose,
                                 partition, min_fanout, max_fanout, rng)
                inserts.value += 1
            self._meta["graph_count"] = \
                self._meta.get("graph_count", 0) + len(new_graphs)
            self._meta["next_id"] = first_new + len(new_graphs)
            self._meta["generation"] = generation
            self._write_meta()
            note = (f"extend gen={generation} "
                    f"graphs={len(new_graphs)}").encode("ascii")
            self.checkpoint(note=note)
        reg.counter("ctree.disk.group_commits").inc()
        return list(range(first_new, first_new + len(new_graphs)))

    def _extend_rebuild(self, new_graphs: list[Graph],
                        seed: int) -> list[int]:
        """The legacy append: re-bulk-load everything (live ids
        preserved), free the old records, write the new generation."""
        global_registry().counter("ctree.disk.rebuilds").inc()
        items = sorted(self.iter_graphs(), key=lambda item: item[0])
        first_new = self._next_id_watermark()
        new_ids = list(range(first_new, first_new + len(new_graphs)))
        items.extend(zip(new_ids, new_graphs))
        self._rebuild_records(items, seed, next_id=first_new
                              + len(new_graphs), note_kind="rebuild")
        return new_ids

    def _rebuild_records(self, items: list[tuple[int, Graph]], seed: int,
                         next_id: int, note_kind: str) -> None:
        """Replace every stored record with a fresh bulk load of
        ``items`` (``(graph_id, graph)`` pairs, ids preserved) under one
        commit — the shared engine behind ``rebuild=True`` and
        :meth:`compact`."""
        from repro.ctree.bulkload import bulk_load

        config = self._meta.get("config", {})
        tree = bulk_load(
            [graph for _, graph in items],
            min_fanout=config.get("min_fanout", 20),
            max_fanout=config.get("max_fanout"),
            mapping_method=config.get("mapping_method", "nbm"),
            insert_policy=config.get("insert_policy", "min_volume"),
            split_policy=config.get("split_policy", "linear"),
            seed=seed,
        )
        # bulk_load numbers graphs by input position; remap each leaf
        # entry back to the id the graph already holds on disk.
        for entry in tree.root.iter_leaf_entries():
            entry.graph_id = items[entry.graph_id][0]
        old_records = self._collect_record_ids()
        generation = self._meta.get("generation", 1) + 1
        for record_id in old_records:
            self._store.delete(record_id)
        meta, meta_record = self._write_tree(self._store, tree, generation,
                                             next_id=next_id)
        self._store.pool.pagefile.user_root = meta_record
        self._meta = meta
        self.checkpoint(note=f"{note_kind} gen={generation}".encode("ascii"))

    # -- incremental insertion (Section 5 against stored records) ------
    @staticmethod
    def _dump_record(record: dict) -> bytes:
        return json.dumps(record, separators=(",", ":")).encode("utf-8")

    def _record_closure(self, record_id: int) -> GraphClosure:
        """The stored closure summarizing one child record."""
        record = self._load_record(record_id)
        return GraphClosure.from_dict(record["closure"])

    def _insert_one(self, graph_id: int, graph: Graph, mapper, choose,
                    partition, min_fanout: int, max_fanout: int,
                    rng: random.Random) -> None:
        """One Section-5 insert against the stored tree: descend via the
        insert policy, extend every closure on the path, split
        bottom-up on overflow.  Only the root-to-leaf path records (and
        any split siblings) are written.

        Two economies keep this flat as the database grows: children are
        deserialized lazily so a short-circuiting policy never loads the
        siblings it skipped, and the policy's enlarged closure for the
        chosen child is reused as that level's fold instead of mapping
        the graph in a second time.
        """
        store = self._store
        path_ids = [self._meta["root"]]
        path_recs = [self._load_record(path_ids[0])]
        # graph already folded into the record's closure, per path level
        path_folds: list[Optional[GraphClosure]] = [None]
        while not path_recs[-1]["leaf"]:
            child_ids = path_recs[-1]["children"]
            closures = _LazyClosures(self, child_ids)
            index, enlarged = choose(closures, graph, mapper, rng)
            path_ids.append(child_ids[index])
            path_recs.append(self._load_record(child_ids[index]))
            path_folds.append(enlarged)

        graph_record = store.store(self._dump_record(graph.to_dict()))
        path_recs[-1].setdefault("graphs", []).append(
            [graph_id, graph_record])
        dirty = [False] * len(path_recs)
        dirty[-1] = True
        for i, rec in enumerate(path_recs):
            folded = path_folds[i]
            if folded is None:
                closure = GraphClosure.from_dict(rec["closure"]) \
                    if "closure" in rec else None
                folded = fold_closure(closure, graph, mapper)
            folded_dict = folded.to_dict()
            if folded_dict != rec.get("closure"):
                rec["closure"] = folded_dict
                dirty[i] = True

        splits = global_registry().counter("ctree.disk.splits")
        sibling_id: Optional[int] = None
        for i in range(len(path_recs) - 1, -1, -1):
            rec = path_recs[i]
            if sibling_id is not None:
                rec["children"].append(sibling_id)
                sibling_id = None
                dirty[i] = True
            entries = rec["graphs"] if rec["leaf"] else rec["children"]
            if len(entries) > max_fanout:
                sibling_id = self._split_record(rec, mapper, partition,
                                                min_fanout, rng)
                splits.value += 1
                dirty[i] = True
                if rec["leaf"]:
                    self._meta["leaf_count"] = \
                        self._meta.get("leaf_count", 0) + 1
            # Persist before the parent is processed: a parent split
            # reads child closures back from the store.  Ancestors whose
            # closure already absorbed the graph are left untouched, so
            # a saturated insert dirties only the leaf end of the path.
            if dirty[i]:
                store.update(path_ids[i], self._dump_record(rec))
            if sibling_id is not None and i == 0:
                self._grow_root(path_ids[0], rec, sibling_id, mapper)
                sibling_id = None

    def _split_record(self, rec: dict, mapper, partition, min_fanout: int,
                      rng: random.Random) -> int:
        """Split an overflowing record in place (Section 5.3): the first
        partition group stays in ``rec``, the second moves to a freshly
        stored sibling; both summaries are re-folded from their
        entries, mirroring the in-memory split exactly.  Returns the
        sibling's record id."""
        key = "graphs" if rec["leaf"] else "children"
        entries = rec[key]
        if rec["leaf"]:
            closures = [as_closure(self._load_graph(graph_record))
                        for _, graph_record in entries]
        else:
            closures = [self._record_closure(cid) for cid in entries]
        with trace.span("ctree.disk.split", fanout=len(entries),
                        leaf=rec["leaf"]):
            group1, group2 = partition(closures, mapper, rng, min_fanout)
            if not group1 or not group2:
                raise PersistenceError("split policy produced an empty group")

            def fold_group(indices: list[int]) -> GraphClosure:
                closure = fold_closure_set(
                    (closures[index] for index in indices), mapper)
                assert closure is not None
                return closure

            sibling = {
                "leaf": rec["leaf"],
                "closure": fold_group(group2).to_dict(),
                key: [entries[i] for i in group2],
            }
            rec[key] = [entries[i] for i in group1]
            rec["closure"] = fold_group(group1).to_dict()
            return self._store.store(self._dump_record(sibling))

    def _grow_root(self, old_root_id: int, old_root: dict, sibling_id: int,
                   mapper) -> None:
        """A root split reached the top: push a new root above the two
        halves and grow the tree by one level."""
        closure = fold_closure(
            GraphClosure.from_dict(old_root["closure"]),
            self._record_closure(sibling_id),
            mapper,
        )
        new_root = {
            "leaf": False,
            "closure": closure.to_dict(),
            "children": [old_root_id, sibling_id],
        }
        self._meta["root"] = self._store.store(self._dump_record(new_root))
        self._meta["height"] = self._meta.get("height", 0) + 1

    # -- incremental deletion (Section 5.4 against stored records) -----
    def delete(self, graph_id: int, seed: int = 0,
               auto_compact: bool = True) -> Graph:
        """Remove one graph by id; returns it (single-graph form of
        :meth:`delete_many`, sharing its group commit and compaction
        behavior)."""
        return self.delete_many([graph_id], seed=seed,
                                auto_compact=auto_compact)[0]

    def delete_many(self, graph_ids: Iterable[int], seed: int = 0,
                    auto_compact: bool = True) -> list[Graph]:
        """Remove a batch of graphs incrementally under **one** group
        commit; returns them in request order.

        Each id's leaf entry is located, removed, and its graph record's
        pages freed.  Ancestor closures on the root-to-leaf path shrink
        or stay: a recompute-from-children runs only where the removed
        graph was load-bearing for a closure bound (a vertex/edge-count
        or label-histogram bound it attained) — keeping a slightly loose
        closure is always sound, Lemma 1 only needs containment of the
        surviving graphs.  A node underflowing below ``min_fanout``
        merges into (or redistributes with) the sibling the
        ``min_volume`` primitive picks, bottom-up, exactly mirroring the
        split machinery; a root left with one child collapses.  The
        batch then commits at a single closing checkpoint carrying a
        ``delete gen=N graphs=M`` note — a crash at any earlier point
        recovers the previous generation intact.

        Counters: each graph bumps ``ctree.disk.deletes``, each
        underflow merge ``ctree.disk.underflow_merges``, each
        redistribution ``ctree.disk.underflow_redistributes``, each
        recomputed closure ``ctree.disk.closure_shrinks``, each batch
        ``ctree.disk.group_commits``.  ``ctree.disk.rebuilds`` stays 0
        on this path.

        With ``auto_compact=True`` (default) the commit is followed by
        :meth:`compact`, which repacks the tree **only** when the
        configured occupancy/height thresholds have degraded (its own
        commit, ``ctree.disk.compactions``); ``auto_compact=False``
        leaves even a hollowed-out tree in place.

        Raises :class:`~repro.exceptions.IndexError_` — before any
        mutation — if an id is absent or requested twice.
        """
        self._check_open()
        ids = list(graph_ids)
        if not ids:
            return []
        if len(set(ids)) != len(ids):
            raise IndexError_("duplicate graph ids in delete batch")
        live = self._live_ids()
        missing = [gid for gid in ids if gid not in live]
        if missing:
            raise IndexError_(f"no graph with id {missing[0]}")
        reg = global_registry()
        config = self._meta.get("config", {})
        mapper = MAPPING_METHODS[config.get("mapping_method", "nbm")]
        partition = resolve_closure_split_policy(
            config.get("split_policy", "linear"))
        min_fanout = config.get("min_fanout", 20)
        max_fanout = config.get("max_fanout") or 2 * min_fanout - 1
        rng = random.Random(seed)
        self._ensure_leaf_count()
        deletes = reg.counter("ctree.disk.deletes")
        generation = self._meta.get("generation", 1) + 1
        removed: list[Graph] = []
        with trace.span("ctree.disk.delete", graphs=len(ids),
                        generation=generation):
            for gid in ids:
                removed.append(self._delete_one(gid, mapper, partition,
                                                min_fanout, max_fanout, rng))
                deletes.value += 1
            self._meta["graph_count"] = \
                self._meta.get("graph_count", 0) - len(ids)
            self._meta["generation"] = generation
            self._write_meta()
            note = (f"delete gen={generation} "
                    f"graphs={len(ids)}").encode("ascii")
            self.checkpoint(note=note)
        reg.counter("ctree.disk.group_commits").inc()
        if auto_compact:
            self.compact(seed=seed)
        return removed

    def _live_ids(self) -> set:
        """Every stored graph id, from a node-only walk (graph payloads
        are never loaded — membership checks stay cheap)."""
        ids: set[int] = set()
        stack = [self._meta["root"]]
        while stack:
            record = self._load_record(stack.pop())
            if record["leaf"]:
                ids.update(gid for gid, _ in record.get("graphs", []))
            else:
                stack.extend(record.get("children", []))
        return ids

    def _find_path(self, graph_id: int) -> list[tuple[int, dict]]:
        """The root-to-leaf path of ``(record_id, record)`` pairs ending
        at the leaf holding ``graph_id``.

        Deletion cannot descend by closure pruning (an id says nothing
        about content), so this is a depth-first scan — worst case one
        node-level pass, no graph payloads loaded.
        """
        stack: list[tuple[int, list]] = [(self._meta["root"], [])]
        while stack:
            record_id, ancestors = stack.pop()
            record = self._load_record(record_id)
            path = ancestors + [(record_id, record)]
            if record["leaf"]:
                if any(gid == graph_id
                       for gid, _ in record.get("graphs", [])):
                    return path
            else:
                for child_id in record.get("children", []):
                    stack.append((child_id, path))
        raise IndexError_(f"no graph with id {graph_id}")

    def _delete_one(self, graph_id: int, mapper, partition,
                    min_fanout: int, max_fanout: int,
                    rng: random.Random) -> Graph:
        """One Section-5.4 delete against the stored tree: drop the leaf
        entry, free the graph record, shrink-or-keep the path closures,
        resolve underflow bottom-up, collapse a trivial root."""
        path = self._find_path(graph_id)
        leaf = path[-1][1]
        entries = leaf["graphs"]
        index = next(i for i, (gid, _) in enumerate(entries)
                     if gid == graph_id)
        _, graph_record = entries[index]
        graph = self._load_graph(graph_record)
        self._store.delete(graph_record)
        del entries[index]
        self._shrink_path(path, graph, mapper, partition, min_fanout,
                          max_fanout, rng)
        self._collapse_root_records()
        return graph

    def _shrink_path(self, path: list, graph: Graph, mapper, partition,
                     min_fanout: int, max_fanout: int,
                     rng: random.Random) -> None:
        """Walk the delete path bottom-up: remove dead children, handle
        underflow via merge-or-redistribute, and shrink each closure the
        removed graph was load-bearing for.  Every modified record is
        persisted before its parent is processed (a parent refold reads
        child closures back from the store), mirroring the insert path.
        """
        reg = global_registry()
        shrinks = reg.counter("ctree.disk.closure_shrinks")
        graph_hist = LabelHistogram.of(graph)
        drop: Optional[int] = None  # freed child to unlink at this level
        for i in range(len(path) - 1, -1, -1):
            record_id, rec = path[i]
            dirty = i == len(path) - 1  # the leaf already lost its entry
            if drop is not None:
                rec["children"].remove(drop)
                drop = None
                dirty = True
            key = "graphs" if rec["leaf"] else "children"
            entries = rec[key]
            if i > 0 and not entries:
                # The node died: free it and unlink it from the parent.
                self._free_node(record_id, rec)
                drop = record_id
                continue
            if not entries:
                # Empty root leaf (delete-to-empty): no members, no
                # closure.
                if rec.pop("closure", None) is not None:
                    dirty = True
            elif "closure" in rec and self._may_shrink(
                    graph, graph_hist, rec["closure"]):
                refolded = self._refold_closure(rec, mapper)
                assert refolded is not None
                refolded_dict = refolded.to_dict()
                if refolded_dict != rec["closure"]:
                    rec["closure"] = refolded_dict
                    shrinks.value += 1
                    dirty = True
            if i > 0 and len(entries) < min_fanout and \
                    len(path[i - 1][1]["children"]) > 1:
                # Shrink ran first, so a merge folds the *tightened*
                # closure into its sibling.  The helper persists every
                # record it leaves alive; an unpersisted `dirty` state
                # is either freed (merge) or rewritten (redistribute).
                if self._merge_or_redistribute(
                        path, i, mapper, partition, min_fanout, max_fanout,
                        rng):
                    drop = record_id
                continue
            if dirty:
                self._store.update(record_id, self._dump_record(rec))

    @staticmethod
    def _may_shrink(graph: Graph, graph_hist: LabelHistogram,
                    closure_dict: dict) -> bool:
        """Whether the removed graph could have been load-bearing for
        this closure: it reached the closure's vertex or edge count, or
        attained one of its histogram bounds.  A ``False`` proves a
        recompute from the surviving children cannot tighten anything,
        so the ancestor is skipped (keeping the closure is always sound
        — Lemma 1 only needs containment of the surviving graphs)."""
        closure = GraphClosure.from_dict(closure_dict)
        if graph.num_vertices >= closure.num_vertices:
            return True
        if graph.num_edges >= closure.num_edges:
            return True
        return graph_hist.attains(LabelHistogram.of(closure))

    def _refold_closure(self, rec: dict, mapper) -> Optional[GraphClosure]:
        """Recompute one record's closure from its current members
        (graphs for a leaf, child closures for an inner node)."""
        if rec["leaf"]:
            items = (self._load_graph(graph_record)
                     for _, graph_record in rec.get("graphs", []))
        else:
            items = (self._record_closure(child_id)
                     for child_id in rec.get("children", []))
        return fold_closure_set(items, mapper)

    def _merge_or_redistribute(self, path: list, i: int, mapper, partition,
                               min_fanout: int, max_fanout: int,
                               rng: random.Random) -> bool:
        """Resolve one underflowing node against a policy-chosen sibling.

        The sibling is the one absorbing the underflowing closure at
        minimum volume growth (:func:`choose_merge_sibling`).  If the
        union fits one node the underflowing record merges into the
        sibling (returns True — the caller unlinks and this method frees
        the record); otherwise the union is repartitioned with the
        configured split policy, leaving both halves within bounds.
        """
        reg = global_registry()
        record_id, rec = path[i]
        parent = path[i - 1][1]
        siblings = [cid for cid in parent["children"] if cid != record_id]
        closure = GraphClosure.from_dict(rec["closure"])
        choice, merged = choose_merge_sibling(
            _LazyClosures(self, siblings), closure, mapper, rng)
        sibling_id = siblings[choice]
        sibling = self._load_record(sibling_id)
        key = "graphs" if rec["leaf"] else "children"
        if len(sibling[key]) + len(rec[key]) <= max_fanout:
            sibling[key] = sibling[key] + rec[key]
            sibling["closure"] = merged.to_dict()
            self._store.update(sibling_id, self._dump_record(sibling))
            self._free_node(record_id, rec)
            reg.counter("ctree.disk.underflow_merges").inc()
            return True
        # The union overflows one node: repartition it instead.  The
        # combined size is >= 2*min_fanout here (the sibling alone held
        # > max_fanout - min_fanout >= min_fanout entries), so every
        # split policy's halves respect the minimum.
        entries = sibling[key] + rec[key]
        if rec["leaf"]:
            closures = [as_closure(self._load_graph(graph_record))
                        for _, graph_record in entries]
        else:
            closures = [self._record_closure(child_id)
                        for child_id in entries]
        group1, group2 = partition(closures, mapper, rng, min_fanout)
        if not group1 or not group2:
            raise PersistenceError("split policy produced an empty group")
        for target_id, target, group in ((sibling_id, sibling, group1),
                                         (record_id, rec, group2)):
            target[key] = [entries[j] for j in group]
            folded = fold_closure_set((closures[j] for j in group), mapper)
            assert folded is not None
            target["closure"] = folded.to_dict()
            self._store.update(target_id, self._dump_record(target))
        reg.counter("ctree.disk.underflow_redistributes").inc()
        return False

    def _free_node(self, record_id: int, rec: dict) -> None:
        """Return one node record's pages to the free list, keeping the
        leaf count current."""
        self._store.delete(record_id)
        if rec["leaf"]:
            self._meta["leaf_count"] = self._meta.get("leaf_count", 1) - 1

    def _collapse_root_records(self) -> None:
        """Shed trivial roots after a delete: an internal root with one
        child hands the root to that child (height shrinks); an internal
        root whose children all died becomes an empty leaf."""
        root_id = self._meta["root"]
        rec = self._load_record(root_id)
        while not rec["leaf"] and len(rec["children"]) == 1:
            child = rec["children"][0]
            self._store.delete(root_id)
            self._meta["root"] = child
            self._meta["height"] = self._meta.get("height", 1) - 1
            root_id, rec = child, self._load_record(child)
        if not rec["leaf"] and not rec["children"]:
            self._store.delete(root_id)
            self._meta["root"] = self._store.store(
                self._dump_record({"leaf": True, "graphs": []}))
            self._meta["height"] = 0
            self._meta["leaf_count"] = 1

    # -- compaction ----------------------------------------------------
    def _next_id_watermark(self) -> int:
        """The next graph id to issue — monotone across deletes, so a
        removed id is never reused for a different graph."""
        return self._meta.get("next_id", self._meta.get("graph_count", 0))

    def _ensure_leaf_count(self) -> int:
        """The number of leaf records, from the metadata or (for an
        index written before the counter existed) one node-only walk,
        cached back into the metadata."""
        count = self._meta.get("leaf_count")
        if count is None:
            count = 0
            stack = [self._meta["root"]]
            while stack:
                record = self._load_record(stack.pop())
                if record["leaf"]:
                    count += 1
                else:
                    stack.extend(record.get("children", []))
            self._meta["leaf_count"] = count
        return count

    @property
    def occupancy(self) -> float:
        """Live entries as a fraction of the leaf level's capacity
        (``graph_count / (leaf_count * max_fanout)``) — the quantity the
        automatic compaction trigger watches."""
        config = self._meta.get("config", {})
        min_fanout = config.get("min_fanout", 20)
        max_fanout = config.get("max_fanout") or 2 * min_fanout - 1
        leaves = max(self._ensure_leaf_count(), 1)
        return len(self) / (leaves * max_fanout)

    def _bulk_load_height(self, count: int) -> int:
        """The height a fresh, fully packed bulk load of ``count``
        graphs could reach (every level at ``max_fanout``) — the
        baseline the height-degradation trigger compares against, with
        ``height_slack`` levels of tolerance on top."""
        config = self._meta.get("config", {})
        min_fanout = config.get("min_fanout", 20)
        max_fanout = max(config.get("max_fanout")
                         or 2 * min_fanout - 1, 2)
        height = 0
        while count > max_fanout:
            count = -(-count // max_fanout)
            height += 1
        return height

    def compaction_needed(
        self,
        min_occupancy: Optional[float] = None,
        height_slack: Optional[int] = None,
    ) -> Optional[str]:
        """Why the tree should be repacked, or None if it is healthy.

        Two degradation signals, both maintained in the v2 metadata:
        leaf occupancy below ``min_occupancy``, or a height more than
        ``height_slack`` levels above what a fully packed bulk load of
        the same graph count would build.  The thresholds default to
        this handle's :attr:`min_occupancy` / :attr:`height_slack`
        knobs (module defaults ``DEFAULT_MIN_OCCUPANCY`` /
        ``DEFAULT_HEIGHT_SLACK``).
        """
        self._check_open()
        if len(self) == 0:
            return None
        if min_occupancy is None:
            min_occupancy = self.min_occupancy
        if height_slack is None:
            height_slack = self.height_slack
        if self._ensure_leaf_count() > 1 and self.occupancy < min_occupancy:
            return (f"occupancy {self.occupancy:.2f} below "
                    f"{min_occupancy:.2f}")
        target = self._bulk_load_height(len(self))
        height = self._meta.get("height", 0)
        if height > target + height_slack:
            return (f"height {height} above bulk-load height {target} "
                    f"+ slack {height_slack}")
        return None

    def compact(
        self,
        seed: int = 0,
        force: bool = False,
        min_occupancy: Optional[float] = None,
        height_slack: Optional[int] = None,
    ) -> Optional[str]:
        """Repack a degraded tree by re-bulk-loading the live graphs
        (ids and the id watermark preserved) under one commit; returns
        the trigger reason, or None when no compaction was needed.

        Runs only when :meth:`compaction_needed` reports a reason
        (``force=True`` overrides), so calling it after every delete
        batch — which ``auto_compact=True`` does — is cheap.  Each run
        bumps ``ctree.disk.compactions`` and commits with a ``compact
        gen=N`` note; ``ctree.disk.rebuilds`` is **not** touched — that
        counter tracks the manual ``rebuild=True`` escape hatch only.
        """
        self._check_open()
        if len(self) == 0:
            return None
        reason = self.compaction_needed(min_occupancy, height_slack) \
            if not force else "forced"
        if reason is None:
            return None
        with trace.span("ctree.disk.compact", reason=reason,
                        graphs=len(self)):
            items = sorted(self.iter_graphs(), key=lambda item: item[0])
            self._rebuild_records(items, seed,
                                  next_id=self._next_id_watermark(),
                                  note_kind="compact")
        global_registry().counter("ctree.disk.compactions").inc()
        return reason

    def _write_meta(self) -> None:
        """Rewrite the metadata record in place (its id — the page
        file's user root — is stable across incremental appends)."""
        meta_record = self._store.pool.pagefile.user_root
        self._store.update(meta_record, self._dump_record(self._meta))

    def checkpoint(self, note: bytes = b"") -> None:
        """Make every buffered change durable (in WAL mode: log, commit,
        transfer into the page file, truncate the log).  ``note`` is a
        diagnostic tag carried on the WAL COMMIT record — a group
        commit stamps its whole batch with one note."""
        self._check_open()
        self._store.pool.flush(note)

    def _collect_record_ids(self) -> list[int]:
        """Every live record id: the metadata record plus all node and
        graph records, discovered by walking the tree."""
        records: list[int] = []
        meta_record = self._store.pool.pagefile.user_root
        if meta_record != NO_PAGE:
            records.append(meta_record)
        stack = [self._meta["root"]]
        while stack:
            record_id = stack.pop()
            records.append(record_id)
            record = self._load_record(record_id)
            if record["leaf"]:
                records.extend(gr for _, gr in record.get("graphs", []))
            else:
                stack.extend(record.get("children", []))
        return records

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._meta["graph_count"]

    @property
    def height(self) -> int:
        """Levels of internal nodes above the leaves."""
        return self._meta["height"]

    @property
    def generation(self) -> int:
        """Monotone counter bumped by every committed :meth:`extend`."""
        return self._meta.get("generation", 1)

    @property
    def path(self) -> Optional[PathLike]:
        """Where this index lives on disk (None for exotic openers);
        the batched engine's workers reopen it read-only from here."""
        return self._path

    @property
    def pool(self) -> BufferPool:
        """The index's buffer pool (for I/O stats and flushing)."""
        return self._store.pool

    def _load_record(self, record_id: int) -> dict:
        return json.loads(self._store.load(record_id).decode("utf-8"))

    def _load_graph(self, record_id: int) -> Graph:
        return Graph.from_dict(self._load_record(record_id))

    def iter_graphs(self):
        """Yield ``(graph_id, graph)`` for every stored graph (full scan)."""
        stack = [self._meta["root"]]
        while stack:
            record = self._load_record(stack.pop())
            if record["leaf"]:
                for graph_id, graph_record in record.get("graphs", []):
                    yield (graph_id, self._load_graph(graph_record))
            else:
                stack.extend(record.get("children", []))

    # ------------------------------------------------------------------
    # Query processing (Alg. 3 over disk-resident nodes)
    # ------------------------------------------------------------------
    def subgraph_query(
        self,
        query: Graph,
        level: Level = 1,
        verify: bool = True,
    ) -> tuple[list[int], DiskQueryStats]:
        """Subgraph query reading nodes and graphs on demand."""
        self._check_open()
        pool = self._store.pool
        hits0, misses0 = pool.hits, pool.misses

        stats = DiskQueryStats(database_size=len(self))
        query_hist = LabelHistogram.of(query)
        # One compiled query context per query (kernel mode); disk-loaded
        # targets are fresh objects, but the query side never recompiles.
        qc = kernels.compile_query(query, level) if kernels.kernels_enabled() \
            else None
        candidates: list[tuple[int, int]] = []  # (graph_id, graph record)

        with trace.span(
            "ctree.subgraph_query",
            query_vertices=query.num_vertices,
            level=str(level),
            database_size=len(self),
            disk=True,
        ) as root_span:
            with trace.span("ctree.search"):
                start = time.perf_counter()
                if len(self):
                    self._visit(
                        self._meta["root"], 0, query, query_hist, qc, level,
                        candidates, stats,
                    )
                stats.search_seconds = time.perf_counter() - start
            stats.candidates = len(candidates)
            root_span.set(candidates=stats.candidates)

            answers: list[int] = []
            if verify:
                with trace.span("ctree.verify", candidates=len(candidates)):
                    start = time.perf_counter()
                    for graph_id, graph_record in candidates:
                        graph = self._load_graph(graph_record)
                        if qc is not None:
                            domains = qc.domains(graph, level)
                        else:
                            domains = pseudo_compatibility_domains(
                                query, graph, level
                            )
                        stats.isomorphism_tests += 1
                        if subgraph_isomorphic(query, graph, domains):
                            answers.append(graph_id)
                    stats.verify_seconds = time.perf_counter() - start
                stats.answers = len(answers)
                root_span.set(answers=stats.answers)

            stats.page_hits = pool.hits - hits0
            stats.page_misses = pool.misses - misses0
            root_span.set(page_hits=stats.page_hits,
                          page_misses=stats.page_misses)
        stats.publish()
        return (answers if verify else [gid for gid, _ in candidates], stats)

    def query_many(
        self,
        queries: Iterable[Graph],
        level: Level = 1,
        verify: bool = True,
        workers: int = 1,
        cache_size: int = 256,
    ) -> list[tuple[list[int], DiskQueryStats]]:
        """Batch subgraph queries through the batched engine
        (:class:`~repro.ctree.parallel.QueryEngine`); each worker opens
        its own read-only handle over this page file.  Answers are
        bit-identical to a serial :meth:`subgraph_query` loop.

        This convenience spins an engine up per call; a serving process
        should hold one long-lived :class:`QueryEngine` (or run
        ``repro serve``) instead.

        Examples
        --------
        ::

            with DiskCTree.open("index.ctp") as disk:
                results = disk.query_many(queries, workers=4)
                answer_sets = [answers for answers, _ in results]
        """
        from repro.ctree.parallel import QueryEngine

        self._check_open()
        with QueryEngine(self, workers=workers,
                         cache_size=cache_size) as engine:
            return engine.query_many(list(queries), level=level,
                                     verify=verify)

    def knn_many(
        self,
        queries: Iterable[Graph],
        k: int,
        mapping_method: str = "nbm",
        workers: int = 1,
        cache_size: int = 256,
    ) -> list[tuple[list[tuple[int, float]], "DiskKnnStats"]]:
        """Batch K-NN queries through the batched engine (same
        guarantees as :meth:`query_many`).

        Examples
        --------
        ::

            with DiskCTree.open("index.ctp") as disk:
                (neighbors, stats), = disk.knn_many([probe], k=5)
        """
        from repro.ctree.parallel import QueryEngine

        self._check_open()
        with QueryEngine(self, workers=workers,
                         cache_size=cache_size) as engine:
            return engine.knn_many(list(queries), k,
                                   mapping_method=mapping_method)

    def _pseudo_survives(self, query, qc, target, level) -> bool:
        """One histogram-free pseudo test of ``target`` (kernel or
        reference engine, matching the in-memory Alg. 3 exactly)."""
        if qc is not None:
            tctx = target_context(target)
            masks = kernels.pseudo_domain_masks(qc.ctx, tctx, level)
            return kernels.global_semi_perfect_masks(masks)
        domains = pseudo_compatibility_domains(query, target, level)
        return global_semi_perfect(domains, target.num_vertices)

    def _histogram_dominates(self, qc, query_hist, target) -> bool:
        if qc is not None:
            return kernels.histogram_dominates(target_context(target), qc)
        return LabelHistogram.of(target).dominates(query_hist)

    def _visit(
        self,
        record_id: int,
        depth: int,
        query: Graph,
        query_hist: LabelHistogram,
        qc,
        level: Level,
        candidates: list,
        stats: DiskQueryStats,
    ) -> None:
        with trace.span("ctree.expand", depth=depth, record=record_id) as sp:
            record = self._load_record(record_id)
            stats.nodes_expanded += 1
            closure = GraphClosure.from_dict(record["closure"])
            # On disk, the parent does not cache child histograms: the node's
            # own histogram gates the whole subtree, then children are tested
            # after being read — one histogram test + one pseudo test per
            # child, like the in-memory Alg. 3 but at record granularity.
            survivors_x = survivors_y = 0
            if record["leaf"]:
                for graph_id, graph_record in record.get("graphs", []):
                    stats.histogram_tests += 1
                    graph = self._load_graph(graph_record)
                    if not self._histogram_dominates(qc, query_hist, graph):
                        continue
                    survivors_x += 1
                    stats.pseudo_tests += 1
                    if self._pseudo_survives(query, qc, graph, level):
                        survivors_y += 1
                        stats.pseudo_survivors += 1
                        candidates.append((graph_id, graph_record))
                stats.record_level(depth, survivors_x, survivors_y,
                                   tested=len(record.get("graphs", [])))
                sp.set(leaf=True, x=survivors_x, y=survivors_y)
                return
            descend = []
            for child_record in record.get("children", []):
                child = self._load_record(child_record)
                child_closure = GraphClosure.from_dict(child["closure"])
                stats.histogram_tests += 1
                if not self._histogram_dominates(qc, query_hist,
                                                 child_closure):
                    continue
                survivors_x += 1
                stats.pseudo_tests += 1
                if self._pseudo_survives(query, qc, child_closure, level):
                    survivors_y += 1
                    stats.pseudo_survivors += 1
                    descend.append(child_record)
            stats.record_level(depth, survivors_x, survivors_y,
                               tested=len(record.get("children", [])))
            sp.set(leaf=False, x=survivors_x, y=survivors_y)
            for child_record in descend:
                self._visit(
                    child_record, depth + 1, query, query_hist, qc, level,
                    candidates, stats,
                )

    # ------------------------------------------------------------------
    # K-NN over disk-resident nodes (Alg. 4 with deferred exact scoring)
    # ------------------------------------------------------------------
    def knn_query(
        self,
        query: Graph,
        k: int,
        mapping_method: str = "nbm",
        canonical: bool = False,
        bound: float = float("-inf"),
    ) -> tuple[list[tuple[int, float]], "DiskKnnStats"]:
        """The K most similar stored graphs, reading records on demand.

        Same incremental-ranking scheme as the in-memory
        :func:`~repro.ctree.similarity_query.knn_query`, with page I/O
        deltas reported in the stats.  ``canonical`` and ``bound`` carry
        the same semantics as there: tie-stable ``(-sim, id)`` ordering
        for the sharded merge layer, and an external kth-best floor the
        coordinator pushes down so shards prune early.
        """
        import heapq
        import itertools

        from repro.matching.edit_distance import graph_similarity

        self._check_open()
        pool = self._store.pool
        hits0, misses0 = pool.hits, pool.misses
        stats = DiskKnnStats(database_size=len(self))
        if k <= 0 or len(self) == 0:
            return ([], stats)
        # Query-side label sets and matching indexes, extracted once and
        # reused for every Eqn. (7) bound along the traversal.
        sqc = SimilarityQueryContext(query)

        with trace.span("ctree.knn_query", k=k, database_size=len(self),
                        disk=True) as root_span:
            start = time.perf_counter()
            counter = itertools.count()
            _NODE, _GRAPH_BOUND, _GRAPH_EXACT = 0, 1, 2
            heap: list[tuple[float, int, int, object]] = []
            # Infinite key: no external ``bound`` may prune the root.
            heapq.heappush(
                heap,
                (float("-inf"), next(counter), _NODE, self._meta["root"]),
            )

            best_k: list[float] = []
            floor = bound
            lower_bound = floor

            def note_similarity(sim: float) -> None:
                nonlocal lower_bound
                if len(best_k) < k:
                    heapq.heappush(best_k, sim)
                else:
                    heapq.heappushpop(best_k, sim)
                if len(best_k) >= k:
                    lower_bound = max(best_k[0], floor)

            results: list[tuple[int, float]] = []
            while heap:
                if len(results) >= k:
                    if not canonical:
                        break
                    # Canonical mode drains boundary ties before cutting:
                    # the heap pops in decreasing key order, so the first
                    # key strictly below the kth-best similarity is final.
                    if -heap[0][0] < results[k - 1][1]:
                        break
                neg_key, _, kind, payload = heapq.heappop(heap)
                if -neg_key < lower_bound:
                    stats.pruned_by_bound += 1
                    continue
                if kind == _GRAPH_EXACT:
                    results.append(payload)  # type: ignore[arg-type]
                    stats.results += 1
                elif kind == _GRAPH_BOUND:
                    graph_id, graph_record = payload  # type: ignore[misc]
                    graph = self._load_graph(graph_record)
                    stats.graphs_scored += 1
                    with trace.span("ctree.knn.score", graph_id=graph_id):
                        sim = graph_similarity(query, graph,
                                               method=mapping_method)
                    note_similarity(sim)
                    if sim >= lower_bound:
                        heapq.heappush(
                            heap,
                            (-sim, next(counter), _GRAPH_EXACT,
                             (graph_id, sim)),
                        )
                    else:
                        stats.pruned_by_bound += 1
                else:
                    with trace.span("ctree.knn.expand") as sp:
                        record = self._load_record(payload)  # type: ignore[arg-type]
                        stats.nodes_expanded += 1
                        if record["leaf"]:
                            for graph_id, graph_record in record.get(
                                    "graphs", []):
                                stats.children_scored += 1
                                graph = self._load_graph(graph_record)
                                bound = sqc.sim_upper_bound(graph)
                                if bound < lower_bound:
                                    stats.pruned_by_bound += 1
                                    continue
                                heapq.heappush(
                                    heap,
                                    (-bound, next(counter), _GRAPH_BOUND,
                                     (graph_id, graph_record)),
                                )
                        else:
                            for child_record in record.get("children", []):
                                stats.children_scored += 1
                                child = self._load_record(child_record)
                                closure = GraphClosure.from_dict(
                                    child["closure"])
                                bound = sqc.sim_upper_bound(closure)
                                if bound < lower_bound:
                                    stats.pruned_by_bound += 1
                                    continue
                                heapq.heappush(
                                    heap,
                                    (-bound, next(counter), _NODE,
                                     child_record),
                                )
                        sp.set(leaf=record["leaf"])

            if canonical:
                # Total order (sim desc, id asc), independent of
                # traversal order — see the in-memory counterpart.
                results.sort(key=lambda t: (-t[1], t[0]))
                del results[k:]
                stats.results = len(results)
            stats.seconds = time.perf_counter() - start
            stats.page_hits = pool.hits - hits0
            stats.page_misses = pool.misses - misses0
            root_span.set(results=len(results), page_hits=stats.page_hits,
                          page_misses=stats.page_misses)
        stats.publish()
        return (results, stats)

    # ------------------------------------------------------------------
    # Recovery / integrity checking
    # ------------------------------------------------------------------
    @classmethod
    def recover(cls, path: PathLike, opener=None, validate: bool = True,
                deep: bool = False) -> DiskRecovery:
        """Bring a crashed index back to its last committed state and
        verify it.

        Replays the sidecar WAL (:func:`repro.storage.wal.recover`),
        then runs :meth:`fsck` over the result: record chains must
        resolve, every page must be reachable or free, and every
        ancestor closure must contain the graphs below it.
        ``deep=True`` further checks each graph pseudo-isomorphic into
        every closure on its root-to-leaf path.

        Examples
        --------
        After a crash (the CLI equivalent is ``repro recover``)::

            result = DiskCTree.recover("index.ctp")
            if not result.ok:
                raise SystemExit(result.summary())
            disk = DiskCTree.open("index.ctp")   # last committed state
        """
        storage = storage_recover(path, opener=opener)
        report = None
        if validate and storage.initialized:
            report = cls.fsck(path, deep=deep, opener=opener)
            reg = global_registry()
            reg.counter("recovery.index_validations").value += 1
        return DiskRecovery(storage=storage, fsck=report)

    @classmethod
    def fsck(cls, path: PathLike, deep: bool = False,
             cache_pages: int = 256, opener=None) -> FsckReport:
        """Integrity-check a disk index without modifying it.

        Verifies page checksums, free-list sanity, record-chain
        resolution, tree reachability (live pages and free pages must
        tile the file exactly — so a split's free-list pages are
        reachable or free exactly once), graph-id uniqueness, uniform
        leaf depth, fanout bounds, and closure containment of every
        graph along its whole root-to-leaf lineage.  ``deep=True`` adds
        a level-1 pseudo-subgraph-isomorphism test of every graph into
        each closure on that lineage (sound by the paper's Lemma 1: a
        closure contains each member graph as a
        subgraph-with-wildcards).

        The report is machine-readable and read-only to produce — the
        query server's ``/healthz`` endpoint runs exactly this
        (non-deep) probe on a timer; see ``docs/SERVING.md``.

        Examples
        --------
        ::

            report = DiskCTree.fsck("index.ctp")
            assert report.clean, report.errors
            print(report.summary())   # pages, nodes, graphs, generation
        """
        report = FsckReport(path=str(path), deep=deep)
        if needs_recovery(path):
            report.issue(
                "write-ahead log contains records; run recovery first"
            )
            return report
        try:
            pagefile = PageFile.open(path, opener=opener)
        except PersistenceError as exc:
            report.issue(f"cannot open page file: {exc}")
            return report
        # fsck is strictly read-only: suppress the header rewrite that a
        # normal close performs.
        pagefile.defer_header = True
        pool = BufferPool(pagefile, capacity=cache_pages)
        store = RecordStore(pool)
        try:
            cls._fsck_body(pagefile, pool, store, report, deep)
        finally:
            pagefile.close()
        return report

    @classmethod
    def _fsck_body(cls, pagefile: PageFile, pool: BufferPool,
                   store: RecordStore, report: FsckReport,
                   deep: bool) -> None:
        report.pages = max(pagefile.page_count - 1, 0)
        # 1. Every allocated page must pass its checksum.
        bad: set[int] = set()
        for page_id in range(1, pagefile.page_count):
            try:
                pagefile.read_page(page_id)
            except ChecksumError as exc:
                report.issue(str(exc))
                bad.add(page_id)
        # 2. The free list must stay in range and acyclic.
        free: set[int] = set()
        head = pagefile.free_head
        while head != NO_PAGE:
            if not 1 <= head < pagefile.page_count:
                report.issue(f"free list points at invalid page {head}")
                break
            if head in free:
                report.issue(f"free list cycles back to page {head}")
                break
            free.add(head)
            if head in bad:
                report.issue(f"free list runs through corrupt page {head}")
                break
            (head,) = _U64.unpack_from(pool.get(head), 0)
        report.free_pages = len(free)
        # 3. Walk the tree: record chains must resolve, closures must
        # contain their children.
        reachable: set[int] = set()
        meta = None
        meta_record = pagefile.user_root
        if meta_record == NO_PAGE:
            report.notes.append("empty page file: no index metadata")
        else:
            meta = cls._fsck_record(store, meta_record, "meta",
                                    reachable, report)
        if meta is not None:
            if meta.get("format") != _FORMAT:
                report.issue(
                    f"unsupported index format {meta.get('format')!r}"
                )
            else:
                report.generation = meta.get("generation", 1)
                graph_ids = cls._fsck_tree(store, meta, reachable,
                                           report, deep)
                report.graphs = len(graph_ids)
                if len(graph_ids) != meta.get("graph_count"):
                    report.issue(
                        f"metadata says {meta.get('graph_count')} graphs, "
                        f"tree holds {len(graph_ids)}"
                    )
                cls._fsck_meta_counters(meta, graph_ids, report)
        report.reachable_pages = len(reachable)
        # 4. Page accounting: live and free pages must tile the file.
        overlap = reachable & free
        if overlap:
            report.issue(
                f"{len(overlap)} page(s) both reachable and free "
                f"(e.g. page {min(overlap)})"
            )
        if meta is not None:
            leaked = (set(range(1, pagefile.page_count))
                      - reachable - free - bad)
            if leaked:
                report.issue(
                    f"{len(leaked)} page(s) leaked "
                    f"(e.g. page {min(leaked)})"
                )

    @staticmethod
    def _fsck_record(store: RecordStore, record_id: int, what: str,
                     reachable: set, report: FsckReport) -> Optional[dict]:
        """Resolve one record chain and parse its JSON; report and
        return None on any failure."""
        try:
            chain = store.chain_pages(record_id)
        except (PersistenceError, struct.error) as exc:
            report.issue(f"{what} record {record_id}: broken chain: {exc}")
            return None
        reachable.update(chain)
        try:
            return json.loads(store.load(record_id).decode("utf-8"))
        except (PersistenceError, json.JSONDecodeError,
                UnicodeDecodeError) as exc:
            report.issue(f"{what} record {record_id}: unreadable: {exc}")
            return None

    @classmethod
    def _fsck_tree(cls, store: RecordStore, meta: dict, reachable: set,
                   report: FsckReport, deep: bool) -> set:
        """Walk the tree checking the invariants incremental inserts
        must preserve.

        The pruning-soundness invariant (the paper's Lemma 1) is that
        every database graph is contained in **each closure on its
        root-to-leaf path** — checked here as histogram dominance along
        the whole lineage, and under ``deep`` as a level-1
        pseudo-isomorphism of the graph into every ancestor closure.
        (Parent-closure-dominates-child-closure is deliberately *not*
        required: incremental closure extension only guarantees
        containment of member graphs, exactly like the in-memory
        ``CTree.validate``.)  Structural checks: leaves all sit at the
        metadata height, and no node overflows the configured maximum
        fanout.
        """
        graph_ids: set[int] = set()
        config = meta.get("config", {})
        min_fanout = config.get("min_fanout", 20)
        max_fanout = config.get("max_fanout") or 2 * min_fanout - 1
        height = meta.get("height", 0)
        #: (record id, depth, [(ancestor hist, ancestor closure), ...])
        Lineage = list[tuple[LabelHistogram, GraphClosure]]
        stack: list[tuple[int, int, Lineage]] = [(meta["root"], 0, [])]
        while stack:
            record_id, depth, lineage = stack.pop()
            record = cls._fsck_record(store, record_id, "node",
                                      reachable, report)
            if record is None:
                continue
            report.nodes += 1
            closure = None
            if "closure" in record:
                try:
                    closure = GraphClosure.from_dict(record["closure"])
                except (KeyError, TypeError, ValueError,
                        IndexError) as exc:
                    report.issue(
                        f"node record {record_id}: bad closure: {exc}"
                    )
            elif record.get("graphs") or record.get("children"):
                report.issue(
                    f"node record {record_id}: non-empty node without a "
                    f"closure"
                )
            entries = record.get("graphs", []) if record.get("leaf") \
                else record.get("children", [])
            if len(entries) > max_fanout:
                report.issue(
                    f"node record {record_id}: fanout {len(entries)} "
                    f"exceeds the configured maximum {max_fanout}"
                )
            if depth > 0 and len(entries) < min_fanout:
                report.notes.append(
                    f"node record {record_id}: fanout {len(entries)} "
                    f"below the configured minimum {min_fanout}"
                )
            hist = LabelHistogram.of(closure) if closure is not None \
                else None
            line = lineage + [(hist, closure)] \
                if hist is not None and closure is not None else lineage
            if record.get("leaf"):
                report.leaves += 1
                if depth != height:
                    report.issue(
                        f"node record {record_id}: leaf at depth {depth}, "
                        f"metadata says height {height}"
                    )
                for entry in record.get("graphs", []):
                    gid, graph_record = entry
                    if gid in graph_ids:
                        report.issue(
                            f"graph id {gid} appears in more than one leaf"
                        )
                    graph_ids.add(gid)
                    gdata = cls._fsck_record(store, graph_record,
                                             f"graph {gid}", reachable,
                                             report)
                    if gdata is None:
                        continue
                    try:
                        graph = Graph.from_dict(gdata)
                    except (KeyError, TypeError, ValueError,
                            IndexError) as exc:
                        report.issue(f"graph {gid}: unparseable: {exc}")
                        continue
                    cls._fsck_graph_lineage(gid, graph, line, deep, report)
            else:
                for child_record in record.get("children", []):
                    stack.append((child_record, depth + 1, line))
        return graph_ids

    @staticmethod
    def _fsck_meta_counters(meta: dict, graph_ids: set,
                            report: FsckReport) -> None:
        """Check the delete-era metadata counters against the live-entry
        walk: the leaf count must match the leaves actually visited, no
        live id may sit at or above the id watermark, and a degraded
        leaf occupancy is surfaced (as a note — the automatic compaction
        trigger, not an integrity rule, decides when to repack)."""
        if "leaf_count" in meta and meta["leaf_count"] != report.leaves:
            report.issue(
                f"metadata says {meta['leaf_count']} leaves, tree holds "
                f"{report.leaves}"
            )
        if "next_id" in meta and graph_ids:
            top = max(graph_ids)
            if top >= meta["next_id"]:
                report.issue(
                    f"graph id {top} at or above the metadata id "
                    f"watermark {meta['next_id']}"
                )
        config = meta.get("config", {})
        min_fanout = config.get("min_fanout", 20)
        max_fanout = config.get("max_fanout") or 2 * min_fanout - 1
        if report.leaves > 1:
            occupancy = len(graph_ids) / (report.leaves * max_fanout)
            if occupancy < DEFAULT_MIN_OCCUPANCY:
                report.notes.append(
                    f"leaf occupancy {occupancy:.2f} below the "
                    f"compaction threshold {DEFAULT_MIN_OCCUPANCY:.2f}"
                )

    @staticmethod
    def _fsck_graph_lineage(gid: int, graph: Graph,
                            lineage: list, deep: bool,
                            report: FsckReport) -> None:
        """Lemma-1 containment of one graph along its whole root-to-leaf
        path: every ancestor histogram must dominate the graph's, and
        (``deep``) the graph must be pseudo-isomorphic into every
        ancestor closure — the exact path incremental inserts enlarge."""
        graph_hist = LabelHistogram.of(graph)
        for level, (hist, closure) in enumerate(lineage):
            where = "leaf" if level == len(lineage) - 1 \
                else f"ancestor at depth {level}"
            if not hist.dominates(graph_hist):
                report.issue(
                    f"graph {gid}: {where} closure does not dominate "
                    f"its label histogram"
                )
                continue
            if deep:
                domains = pseudo_compatibility_domains(graph, closure, 1)
                if not global_semi_perfect(domains, closure.num_vertices):
                    report.issue(
                        f"graph {gid}: not pseudo-contained in the "
                        f"{where} closure"
                    )

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Checkpoint all dirty state to disk (one WAL commit)."""
        self._store.pool.flush()

    def close(self) -> None:
        """Flush and release the underlying storage stack."""
        if not self._closed:
            self._store.pool.close()
            self._closed = True

    def __enter__(self) -> "DiskCTree":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise PersistenceError("disk index is closed")

    def __repr__(self) -> str:
        return (f"<DiskCTree |D|={len(self)} height={self.height} "
                f"pages={self._store.pool.pagefile.page_count}>")


class _LazyClosures:
    """Child closures of one record, deserialized on first access.

    Handed to insert policies during descent so a short-circuiting
    policy (``min_volume`` returns at the first zero volume increase)
    never pays to parse the siblings it skipped.  Accesses are cached:
    a policy that does examine every child (``min_overlap``) parses
    each one exactly once.
    """

    def __init__(self, index: DiskCTree, child_ids: list):
        self._index = index
        self._ids = child_ids
        self._cache: dict = {}

    def __len__(self) -> int:
        return len(self._ids)

    def __getitem__(self, i: int) -> GraphClosure:
        closure = self._cache.get(i)
        if closure is None:
            closure = self._index._record_closure(self._ids[i])
            self._cache[i] = closure
        return closure

    def __iter__(self):
        for i in range(len(self._ids)):
            yield self[i]
