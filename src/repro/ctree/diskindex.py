"""Disk-backed C-tree (the paper's advantage #4).

"Dynamic insertion/deletion and disk-based access of graphs can be done
efficiently" — this module materializes a built C-tree into a page file
(one record per node, one per graph) and answers subgraph queries by
reading nodes on demand through an LRU buffer pool.  The interesting
quantity is page I/O per query as a function of cache capacity, which
``benchmarks/bench_ablation_diskio.py`` sweeps.

Usage::

    tree = bulk_load(graphs, ...)
    with DiskCTree.create(tree, "index.ctp", cache_pages=128) as disk:
        answers, stats = disk.subgraph_query(query)
        print(stats.page_misses, stats.page_hits)

    with DiskCTree.open("index.ctp") as disk:   # later, cold
        ...
"""

from __future__ import annotations

import json
import time
from repro.exceptions import PersistenceError
from repro.graphs.closure import GraphClosure
from repro.graphs.graph import Graph
from repro.graphs.histogram import LabelHistogram
from repro.graphs.labelspace import target_context
from repro.matching import kernels
from repro.matching.bounds import SimilarityQueryContext
from repro.matching.pseudo_iso import (
    Level,
    global_semi_perfect,
    pseudo_compatibility_domains,
)
from repro.matching.ullmann import subgraph_isomorphic
from repro.obs import trace
from repro.ctree.node import CTreeNode, LeafEntry
from repro.ctree.stats import CounterField, KnnStats, QueryStats
from repro.ctree.tree import CTree
from repro.storage.bufferpool import BufferPool
from repro.storage.pagefile import PageFile, PathLike
from repro.storage.recordstore import RecordStore

_FORMAT = 1


class DiskQueryStats(QueryStats):
    """Query counters plus buffer-pool I/O deltas."""

    page_hits = CounterField("ctree.query.page_hits")
    page_misses = CounterField("ctree.query.page_misses")

    _COUNTER_FIELDS = QueryStats._COUNTER_FIELDS + ("page_hits",
                                                    "page_misses")

    def __init__(self, page_hits: int = 0, page_misses: int = 0,
                 **kwargs) -> None:
        super().__init__(**kwargs)
        self.page_hits = page_hits
        self.page_misses = page_misses

    @property
    def page_hit_ratio(self) -> float:
        total = self.page_hits + self.page_misses
        return self.page_hits / total if total else 0.0


class DiskKnnStats(KnnStats):
    """K-NN counters plus buffer-pool I/O deltas."""

    page_hits = CounterField("ctree.knn.page_hits")
    page_misses = CounterField("ctree.knn.page_misses")

    _COUNTER_FIELDS = KnnStats._COUNTER_FIELDS + ("page_hits",
                                                  "page_misses")

    def __init__(self, page_hits: int = 0, page_misses: int = 0,
                 **kwargs) -> None:
        super().__init__(**kwargs)
        self.page_hits = page_hits
        self.page_misses = page_misses

    @property
    def page_hit_ratio(self) -> float:
        total = self.page_hits + self.page_misses
        return self.page_hits / total if total else 0.0


class DiskCTree:
    """A read-only, page-resident snapshot of a C-tree."""

    def __init__(self, store: RecordStore, meta: dict) -> None:
        self._store = store
        self._meta = meta
        self._closed = False

    # ------------------------------------------------------------------
    # Construction / opening
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        tree: CTree,
        path: PathLike,
        page_size: int = 4096,
        cache_pages: int = 128,
    ) -> "DiskCTree":
        """Materialize a built (in-memory) C-tree into a page file."""
        pagefile = PageFile.create(path, page_size=page_size)
        pool = BufferPool(pagefile, capacity=cache_pages)
        store = RecordStore(pool)

        def write_node(node: CTreeNode) -> int:
            record: dict = {"leaf": node.is_leaf}
            if node.closure is not None:
                record["closure"] = node.closure.to_dict()
            if node.is_leaf:
                graphs = []
                for child in node.children:
                    assert isinstance(child, LeafEntry)
                    graph_record = store.store(
                        json.dumps(child.graph.to_dict(),
                                   separators=(",", ":")).encode("utf-8")
                    )
                    graphs.append([child.graph_id, graph_record])
                record["graphs"] = graphs
            else:
                record["children"] = [
                    write_node(child)
                    for child in node.children
                    if isinstance(child, CTreeNode)
                ]
            return store.store(
                json.dumps(record, separators=(",", ":")).encode("utf-8")
            )

        root_record = write_node(tree.root)
        meta = {
            "format": _FORMAT,
            "root": root_record,
            "graph_count": len(tree),
            "height": tree.height(),
        }
        meta_record = store.store(
            json.dumps(meta, separators=(",", ":")).encode("utf-8")
        )
        pagefile.user_root = meta_record
        pool.flush()
        return cls(store, meta)

    @classmethod
    def open(cls, path: PathLike, cache_pages: int = 128) -> "DiskCTree":
        """Open an existing disk index (cold cache)."""
        pagefile = PageFile.open(path)
        pool = BufferPool(pagefile, capacity=cache_pages)
        store = RecordStore(pool)
        meta_record = pagefile.user_root
        if meta_record == 0:
            pagefile.close()
            raise PersistenceError(f"{path}: no index metadata")
        try:
            meta = json.loads(store.load(meta_record).decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            pagefile.close()
            raise PersistenceError(f"{path}: corrupt metadata: {exc}") from exc
        if meta.get("format") != _FORMAT:
            pagefile.close()
            raise PersistenceError(
                f"{path}: unsupported format {meta.get('format')!r}"
            )
        return cls(store, meta)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._meta["graph_count"]

    @property
    def height(self) -> int:
        return self._meta["height"]

    @property
    def pool(self) -> BufferPool:
        return self._store.pool

    def _load_record(self, record_id: int) -> dict:
        return json.loads(self._store.load(record_id).decode("utf-8"))

    def _load_graph(self, record_id: int) -> Graph:
        return Graph.from_dict(self._load_record(record_id))

    def iter_graphs(self):
        """Yield ``(graph_id, graph)`` for every stored graph (full scan)."""
        stack = [self._meta["root"]]
        while stack:
            record = self._load_record(stack.pop())
            if record["leaf"]:
                for graph_id, graph_record in record.get("graphs", []):
                    yield (graph_id, self._load_graph(graph_record))
            else:
                stack.extend(record.get("children", []))

    # ------------------------------------------------------------------
    # Query processing (Alg. 3 over disk-resident nodes)
    # ------------------------------------------------------------------
    def subgraph_query(
        self,
        query: Graph,
        level: Level = 1,
        verify: bool = True,
    ) -> tuple[list[int], DiskQueryStats]:
        """Subgraph query reading nodes and graphs on demand."""
        self._check_open()
        pool = self._store.pool
        hits0, misses0 = pool.hits, pool.misses

        stats = DiskQueryStats(database_size=len(self))
        query_hist = LabelHistogram.of(query)
        # One compiled query context per query (kernel mode); disk-loaded
        # targets are fresh objects, but the query side never recompiles.
        qc = kernels.compile_query(query, level) if kernels.kernels_enabled() \
            else None
        candidates: list[tuple[int, int]] = []  # (graph_id, graph record)

        with trace.span(
            "ctree.subgraph_query",
            query_vertices=query.num_vertices,
            level=str(level),
            database_size=len(self),
            disk=True,
        ) as root_span:
            with trace.span("ctree.search"):
                start = time.perf_counter()
                if len(self):
                    self._visit(
                        self._meta["root"], 0, query, query_hist, qc, level,
                        candidates, stats,
                    )
                stats.search_seconds = time.perf_counter() - start
            stats.candidates = len(candidates)
            root_span.set(candidates=stats.candidates)

            answers: list[int] = []
            if verify:
                with trace.span("ctree.verify", candidates=len(candidates)):
                    start = time.perf_counter()
                    for graph_id, graph_record in candidates:
                        graph = self._load_graph(graph_record)
                        if qc is not None:
                            domains = qc.domains(graph, level)
                        else:
                            domains = pseudo_compatibility_domains(
                                query, graph, level
                            )
                        stats.isomorphism_tests += 1
                        if subgraph_isomorphic(query, graph, domains):
                            answers.append(graph_id)
                    stats.verify_seconds = time.perf_counter() - start
                stats.answers = len(answers)
                root_span.set(answers=stats.answers)

            stats.page_hits = pool.hits - hits0
            stats.page_misses = pool.misses - misses0
            root_span.set(page_hits=stats.page_hits,
                          page_misses=stats.page_misses)
        stats.publish()
        return (answers if verify else [gid for gid, _ in candidates], stats)

    def _pseudo_survives(self, query, qc, target, level) -> bool:
        """One histogram-free pseudo test of ``target`` (kernel or
        reference engine, matching the in-memory Alg. 3 exactly)."""
        if qc is not None:
            tctx = target_context(target)
            masks = kernels.pseudo_domain_masks(qc.ctx, tctx, level)
            return kernels.global_semi_perfect_masks(masks)
        domains = pseudo_compatibility_domains(query, target, level)
        return global_semi_perfect(domains, target.num_vertices)

    def _histogram_dominates(self, qc, query_hist, target) -> bool:
        if qc is not None:
            return kernels.histogram_dominates(target_context(target), qc)
        return LabelHistogram.of(target).dominates(query_hist)

    def _visit(
        self,
        record_id: int,
        depth: int,
        query: Graph,
        query_hist: LabelHistogram,
        qc,
        level: Level,
        candidates: list,
        stats: DiskQueryStats,
    ) -> None:
        with trace.span("ctree.expand", depth=depth, record=record_id) as sp:
            record = self._load_record(record_id)
            stats.nodes_expanded += 1
            closure = GraphClosure.from_dict(record["closure"])
            # On disk, the parent does not cache child histograms: the node's
            # own histogram gates the whole subtree, then children are tested
            # after being read — one histogram test + one pseudo test per
            # child, like the in-memory Alg. 3 but at record granularity.
            survivors_x = survivors_y = 0
            if record["leaf"]:
                for graph_id, graph_record in record.get("graphs", []):
                    stats.histogram_tests += 1
                    graph = self._load_graph(graph_record)
                    if not self._histogram_dominates(qc, query_hist, graph):
                        continue
                    survivors_x += 1
                    stats.pseudo_tests += 1
                    if self._pseudo_survives(query, qc, graph, level):
                        survivors_y += 1
                        stats.pseudo_survivors += 1
                        candidates.append((graph_id, graph_record))
                stats.record_level(depth, survivors_x, survivors_y)
                sp.set(leaf=True, x=survivors_x, y=survivors_y)
                return
            descend = []
            for child_record in record.get("children", []):
                child = self._load_record(child_record)
                child_closure = GraphClosure.from_dict(child["closure"])
                stats.histogram_tests += 1
                if not self._histogram_dominates(qc, query_hist,
                                                 child_closure):
                    continue
                survivors_x += 1
                stats.pseudo_tests += 1
                if self._pseudo_survives(query, qc, child_closure, level):
                    survivors_y += 1
                    stats.pseudo_survivors += 1
                    descend.append(child_record)
            stats.record_level(depth, survivors_x, survivors_y)
            sp.set(leaf=False, x=survivors_x, y=survivors_y)
            for child_record in descend:
                self._visit(
                    child_record, depth + 1, query, query_hist, qc, level,
                    candidates, stats,
                )

    # ------------------------------------------------------------------
    # K-NN over disk-resident nodes (Alg. 4 with deferred exact scoring)
    # ------------------------------------------------------------------
    def knn_query(
        self,
        query: Graph,
        k: int,
        mapping_method: str = "nbm",
    ) -> tuple[list[tuple[int, float]], "DiskKnnStats"]:
        """The K most similar stored graphs, reading records on demand.

        Same incremental-ranking scheme as the in-memory
        :func:`~repro.ctree.similarity_query.knn_query`, with page I/O
        deltas reported in the stats.
        """
        import heapq
        import itertools

        from repro.matching.edit_distance import graph_similarity

        self._check_open()
        pool = self._store.pool
        hits0, misses0 = pool.hits, pool.misses
        stats = DiskKnnStats(database_size=len(self))
        if k <= 0 or len(self) == 0:
            return ([], stats)
        # Query-side label sets and matching indexes, extracted once and
        # reused for every Eqn. (7) bound along the traversal.
        sqc = SimilarityQueryContext(query)

        with trace.span("ctree.knn_query", k=k, database_size=len(self),
                        disk=True) as root_span:
            start = time.perf_counter()
            counter = itertools.count()
            _NODE, _GRAPH_BOUND, _GRAPH_EXACT = 0, 1, 2
            heap: list[tuple[float, int, int, object]] = []
            heapq.heappush(heap,
                           (0.0, next(counter), _NODE, self._meta["root"]))

            best_k: list[float] = []
            lower_bound = float("-inf")

            def note_similarity(sim: float) -> None:
                nonlocal lower_bound
                if len(best_k) < k:
                    heapq.heappush(best_k, sim)
                else:
                    heapq.heappushpop(best_k, sim)
                if len(best_k) >= k:
                    lower_bound = best_k[0]

            results: list[tuple[int, float]] = []
            while heap and len(results) < k:
                neg_key, _, kind, payload = heapq.heappop(heap)
                if -neg_key < lower_bound:
                    stats.pruned_by_bound += 1
                    continue
                if kind == _GRAPH_EXACT:
                    results.append(payload)  # type: ignore[arg-type]
                    stats.results += 1
                elif kind == _GRAPH_BOUND:
                    graph_id, graph_record = payload  # type: ignore[misc]
                    graph = self._load_graph(graph_record)
                    stats.graphs_scored += 1
                    with trace.span("ctree.knn.score", graph_id=graph_id):
                        sim = graph_similarity(query, graph,
                                               method=mapping_method)
                    note_similarity(sim)
                    if sim >= lower_bound:
                        heapq.heappush(
                            heap,
                            (-sim, next(counter), _GRAPH_EXACT,
                             (graph_id, sim)),
                        )
                    else:
                        stats.pruned_by_bound += 1
                else:
                    with trace.span("ctree.knn.expand") as sp:
                        record = self._load_record(payload)  # type: ignore[arg-type]
                        stats.nodes_expanded += 1
                        if record["leaf"]:
                            for graph_id, graph_record in record.get(
                                    "graphs", []):
                                stats.children_scored += 1
                                graph = self._load_graph(graph_record)
                                bound = sqc.sim_upper_bound(graph)
                                if bound < lower_bound:
                                    stats.pruned_by_bound += 1
                                    continue
                                heapq.heappush(
                                    heap,
                                    (-bound, next(counter), _GRAPH_BOUND,
                                     (graph_id, graph_record)),
                                )
                        else:
                            for child_record in record.get("children", []):
                                stats.children_scored += 1
                                child = self._load_record(child_record)
                                closure = GraphClosure.from_dict(
                                    child["closure"])
                                bound = sqc.sim_upper_bound(closure)
                                if bound < lower_bound:
                                    stats.pruned_by_bound += 1
                                    continue
                                heapq.heappush(
                                    heap,
                                    (-bound, next(counter), _NODE,
                                     child_record),
                                )
                        sp.set(leaf=record["leaf"])

            stats.seconds = time.perf_counter() - start
            stats.page_hits = pool.hits - hits0
            stats.page_misses = pool.misses - misses0
            root_span.set(results=len(results), page_hits=stats.page_hits,
                          page_misses=stats.page_misses)
        stats.publish()
        return (results, stats)

    # ------------------------------------------------------------------
    def flush(self) -> None:
        self._store.pool.flush()

    def close(self) -> None:
        if not self._closed:
            self._store.pool.close()
            self._closed = True

    def __enter__(self) -> "DiskCTree":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise PersistenceError("disk index is closed")

    def __repr__(self) -> str:
        return (f"<DiskCTree |D|={len(self)} height={self.height} "
                f"pages={self._store.pool.pagefile.page_count}>")
