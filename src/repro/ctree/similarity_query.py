"""Similarity queries on a C-tree (Section 7, Algorithm 4).

**K-NN** uses incremental ranking [23, 24]: a priority queue holds tree
nodes keyed by the Eqn. (7) upper bound of their closure's similarity to the
query, and database graphs keyed by their (approximate, NBM-computed)
similarity.  Because a node's bound dominates the similarity of anything
below it, popping in decreasing key order reports neighbors in
(approximately) best-first order.  A second priority queue of the best k
graphs seen so far supplies a lower-bound threshold that discards children
early.

**Range queries** return all graphs within edit distance ``r`` of the
query, pruning nodes whose closure admits a distance lower bound above
``r`` (a closure-aware version of the Eqn. 7 bound: members must pay at
least one unit for every query vertex/edge the closure cannot match, and
for every required closure element beyond the query's size).
"""

from __future__ import annotations

import heapq
import itertools
import time
from repro.graphs.closure import GraphClosure
from repro.graphs.graph import Graph
from repro.matching.bounds import SimilarityQueryContext
from repro.matching.edit_distance import graph_distance, graph_similarity
from repro.obs import trace
from repro.ctree.node import CTreeNode, LeafEntry
from repro.ctree.stats import KnnStats
from repro.ctree.tree import CTree


def knn_query(
    tree: CTree,
    query: Graph,
    k: int,
    mapping_method: str = "nbm",
    canonical: bool = False,
    bound: float = float("-inf"),
) -> tuple[list[tuple[int, float]], KnnStats]:
    """The K nearest (most similar) graphs to ``query`` (Algorithm 4).

    Returns ``([(graph_id, similarity)...], stats)`` in decreasing
    similarity order (length ``min(k, |D|)``).  Similarities are computed
    with the configured heuristic mapping, exactly as in the paper.

    ``canonical=True`` switches boundary ties from traversal order to the
    total order ``(-similarity, graph_id)``: the heap loop keeps running
    through graphs tied with the kth-best before cutting to ``k``, so the
    result is a deterministic function of the database alone — the
    contract :mod:`repro.ctree.shards` needs to merge per-shard top-k
    lists.  The default preserves the historical (golden-pinned) order.

    ``bound`` is an external lower bound on useful similarity: subtrees
    and graphs strictly below it are pruned even before ``k`` results
    exist.  Sound whenever the caller already holds ``k`` answers with
    similarity ``>= bound`` (the sharded coordinator's global kth-best
    pushdown); ties at ``bound`` are never pruned.
    """
    stats = KnnStats(database_size=len(tree))
    if k <= 0 or len(tree) == 0:
        return ([], stats)
    with trace.span("ctree.knn_query", k=k, database_size=len(tree),
                    mapping=mapping_method) as root_span:
        start = time.perf_counter()
        results = _knn_search(tree, query, k, mapping_method, stats,
                              canonical=canonical, bound=bound)
        stats.seconds = time.perf_counter() - start
        root_span.set(results=len(results))
    stats.publish()
    return (results, stats)


def _knn_search(
    tree: CTree,
    query: Graph,
    k: int,
    mapping_method: str,
    stats: KnnStats,
    canonical: bool = False,
    bound: float = float("-inf"),
) -> list[tuple[int, float]]:
    """The incremental-ranking heap loop of Algorithm 4.

    See :func:`knn_query` for the ``canonical`` (tie-stable total order)
    and ``bound`` (external kth-best pushdown) extensions; both default
    to the paper-faithful behavior.
    """
    counter = itertools.count()
    # Query-side label sets and matching indexes, extracted once and reused
    # for every Eqn. (7) bound along the traversal.
    sqc = SimilarityQueryContext(query)
    # Max-heap via negated keys.  Entries: (-key, tiebreak, kind, payload)
    # with kind one of _NODE (key = closure similarity bound), _GRAPH_BOUND
    # (key = Eqn. 7 bound, exact similarity not yet computed) or
    # _GRAPH_EXACT (key = heuristic similarity).  Deferring the expensive
    # exact similarity until a graph's *bound* reaches the top of the queue
    # is the optimal multi-step scheme of [24] the paper builds on.
    _NODE, _GRAPH_BOUND, _GRAPH_EXACT = 0, 1, 2
    heap: list[tuple[float, int, int, object]] = []
    # The root is seeded with an infinite key so no external ``bound``
    # can prune it before expansion.
    heapq.heappush(heap, (float("-inf"), next(counter), _NODE, tree.root))

    # Min-heap of the current k best exact similarities (top = lower bound).
    # An external ``bound`` (the coordinator's global kth-best) is a floor
    # the running threshold never drops below.
    best_k: list[float] = []
    lower_bound = bound

    def note_similarity(sim: float) -> None:
        nonlocal lower_bound
        if len(best_k) < k:
            heapq.heappush(best_k, sim)
        else:
            heapq.heappushpop(best_k, sim)
        if len(best_k) >= k:
            lower_bound = max(best_k[0], bound)

    results: list[tuple[int, float]] = []
    while heap:
        if len(results) >= k:
            if not canonical:
                break
            # Canonical mode keeps draining boundary ties: the heap pops
            # in decreasing key order, so the first key strictly below
            # the kth-best similarity ends the query.
            if -heap[0][0] < results[k - 1][1]:
                break
        neg_key, _, kind, payload = heapq.heappop(heap)
        if -neg_key < lower_bound:
            stats.pruned_by_bound += 1
            continue
        if kind == _GRAPH_EXACT:
            graph_id, sim = payload  # type: ignore[misc]
            results.append((graph_id, sim))
            stats.results += 1
        elif kind == _GRAPH_BOUND:
            entry = payload
            assert isinstance(entry, LeafEntry)
            stats.graphs_scored += 1
            with trace.span("ctree.knn.score", graph_id=entry.graph_id):
                sim = graph_similarity(query, entry.graph,
                                       method=mapping_method)
            note_similarity(sim)
            if sim >= lower_bound:
                heapq.heappush(
                    heap,
                    (-sim, next(counter), _GRAPH_EXACT, (entry.graph_id, sim)),
                )
            else:
                stats.pruned_by_bound += 1
        else:
            node = payload
            assert isinstance(node, CTreeNode)
            stats.nodes_expanded += 1
            with trace.span("ctree.knn.expand") as sp:
                for child in node.children:
                    stats.children_scored += 1
                    child_bound = sqc.sim_upper_bound(
                        CTreeNode.child_graph_like(child)
                    )
                    if child_bound < lower_bound:
                        stats.pruned_by_bound += 1
                        continue
                    if isinstance(child, LeafEntry):
                        heapq.heappush(
                            heap,
                            (-child_bound, next(counter), _GRAPH_BOUND, child),
                        )
                    else:
                        heapq.heappush(
                            heap, (-child_bound, next(counter), _NODE, child)
                        )
                sp.set(fanout=len(node.children))

    if canonical:
        # Total order: similarity desc, graph id asc — independent of
        # traversal order, so every shard (and the serial reference)
        # resolves boundary ties identically.
        results.sort(key=lambda t: (-t[1], t[0]))
        del results[k:]
        stats.results = len(results)
    return results


def knn_query_many(
    tree: CTree,
    queries: list[Graph],
    k: int,
    mapping_method: str = "nbm",
    workers: int = 1,
    cache_size: int = 256,
) -> list[tuple[list[tuple[int, float]], KnnStats]]:
    """Answer a batch of K-NN queries through the batched engine.

    One-shot convenience wrapper over
    :class:`~repro.ctree.parallel.QueryEngine`; results are identical
    to the serial per-query loop at every ``workers``.
    """
    from repro.ctree.parallel import QueryEngine

    with QueryEngine(tree, workers=workers, cache_size=cache_size) as engine:
        return engine.knn_many(queries, k, mapping_method=mapping_method)


def range_query(
    tree: CTree,
    query: Graph,
    radius: float,
    mapping_method: str = "nbm",
) -> tuple[list[tuple[int, float]], KnnStats]:
    """All graphs within (approximate) edit distance ``radius`` of ``query``.

    Nodes are pruned when :func:`closure_distance_lower_bound` exceeds the
    radius; that bound is sound, so no true answer is pruned — but since
    graph distances themselves are heuristic upper bounds, borderline
    graphs may be missed, mirroring the paper's approximate semantics.
    """
    stats = KnnStats(database_size=len(tree))
    results: list[tuple[int, float]] = []
    start = time.perf_counter()
    if len(tree) == 0:
        stats.seconds = time.perf_counter() - start
        return (results, stats)

    with trace.span("ctree.range_query", radius=radius,
                    database_size=len(tree)) as root_span:
        sqc = SimilarityQueryContext(query)
        stack = [tree.root]
        while stack:
            node = stack.pop()
            stats.nodes_expanded += 1
            for child in node.children:
                stats.children_scored += 1
                if isinstance(child, LeafEntry):
                    stats.graphs_scored += 1
                    dist = graph_distance(query, child.graph,
                                          method=mapping_method)
                    if dist <= radius:
                        results.append((child.graph_id, dist))
                        stats.results += 1
                else:
                    assert child.closure is not None
                    bound = sqc.closure_distance_lower_bound(child.closure)
                    if bound > radius:
                        stats.pruned_by_bound += 1
                        continue
                    stack.append(child)
        root_span.set(results=len(results))

    results.sort(key=lambda t: (t[1], t[0]))
    stats.seconds = time.perf_counter() - start
    stats.publish()
    return (results, stats)


def closure_distance_lower_bound(query: Graph, closure: GraphClosure) -> float:
    """A lower bound on ``d(query, H)`` for every graph ``H`` contained in
    ``closure``.

    Vertex part: any mapping pays >= 1 for each of the
    ``max(|V_q|, minV(C))`` vertices of the larger side that is not in a
    zero-cost pair, and zero-cost pairs number at most ``Sim(V_q, V_C)``
    (which dominates ``Sim(V_q, V_H)``).  Edge part analogous.

    One-shot convenience wrapper; traversals build one
    :class:`~repro.matching.bounds.SimilarityQueryContext` per query
    instead.
    """
    return SimilarityQueryContext(query).closure_distance_lower_bound(closure)


def linear_scan_knn(
    graphs: dict[int, Graph],
    query: Graph,
    k: int,
    mapping_method: str = "nbm",
) -> list[tuple[int, float]]:
    """Reference K-NN: score every database graph.  Ground truth for the
    index (up to ties and heuristic-mapping noise)."""
    scored = [
        (gid, graph_similarity(query, g, method=mapping_method))
        for gid, g in graphs.items()
    ]
    scored.sort(key=lambda t: (-t[1], t[0]))
    return scored[:k]
