"""Answer caches for the query engines: in-process LRU and a
cross-process shared-memory slab.

Both caches speak one duck-typed interface, so
:class:`~repro.ctree.parallel.QueryEngine` and
:class:`~repro.ctree.shards.ShardedEngine` take either via their
``cache=`` parameter:

- ``get(kind, params, query) -> (answers, stats) | None``
- ``put(kind, params, query, answers, stats) -> None``
- ``clear() -> None``
- ``entries`` (int property) and ``enabled`` (bool property)

:class:`LRUAnswerCache` is PR 5's per-engine cache factored out of
``QueryEngine``: signature-keyed buckets verified by exact structural
equality, entry-level LRU eviction.  It dies with its process.

:class:`SharedMemoryAnswerCache` is the cross-process cache the sharded
engine puts in front of its shards: a fixed-size slab of slots in one
:mod:`multiprocessing.shared_memory` segment shared by every engine
process on the host.  A hot query served from it touches **no shard
worker at all**, and because the segment outlives any single engine
process, a restarted engine starts warm.

**Slab anatomy.**  The segment holds a versioned header followed by
``slots`` fixed-size entries, direct-mapped by a stable 64-bit hash of
the exact query structure::

    header:  magic | version | slots | slot_size | generation
    slot:    seq | generation | key_hash | length | crc32 | payload

Each slot is a *reader seqlock*: a writer bumps ``seq`` to an odd value,
copies the payload, then bumps it even; a reader snapshots ``seq``,
copies, and re-reads — a torn read (``seq`` odd or changed) is retried
and then treated as a miss.  Concurrent writers to one slot are not
mutually excluded (last writer wins); the payload CRC makes an
interleaved write a detectable miss, never a wrong answer.  The payload
stores the **exact structure key** of the cached query plus its kind and
parameters, and a hit requires them to match exactly — a 64-bit hash
collision (or a signature collision) is therefore a miss, preserving
the engines' never-wrong-answer contract.

``clear()`` bumps the header *generation*; slots written under an older
generation stop matching, so invalidation is O(1) and visible to every
attached process at once.

**Lifetime.**  The segment is created by the first engine that asks for
the name and re-attached by everyone else; it is never removed by a
process exiting (the stdlib resource tracker is told to leave it alone)
— call :meth:`SharedMemoryAnswerCache.destroy` to unlink it, e.g. from
``repro shard --drop-cache`` or test teardown.
"""

from __future__ import annotations

import hashlib
import pickle
import struct
import zlib
from collections import OrderedDict
from typing import Optional

from repro.exceptions import ConfigError
from repro.graphs.graph import Graph
from repro.obs.metrics import global_registry

__all__ = [
    "LRUAnswerCache",
    "SharedMemoryAnswerCache",
    "structure_key",
    "cache_segment_name",
]

#: slab format version; bumped on any layout change
_VERSION = 1
_MAGIC = b"RCTSHMC\x01"
#: magic(8) | version(u32) | slots(u32) | slot_size(u32) | pad(u32) |
#: generation(u64)
_HEADER = struct.Struct("<8sIIIIQ")
#: seq(u64) | generation(u64) | key_hash(u64) | length(u32) | crc(u32)
_SLOT = struct.Struct("<QQQII")
#: how many times a reader retries a torn (odd/changed seq) slot
_READ_RETRIES = 8


def structure_key(graph: Graph) -> tuple:
    """An exact structural identity key for ``graph`` (order-normalized
    labels and edges).

    Two graphs compare equal under this key iff
    :meth:`Graph.structure_equal <repro.graphs.graph.Graph.structure_equal>`
    holds — it is the batch-dedup identity of the engines and the
    verification key of both answer caches.
    """
    return (
        tuple(repr(graph.label(v)) for v in graph.vertices()),
        tuple(sorted((u, v, repr(label)) for u, v, label in graph.edges())),
    )


def _key_hash(kind: str, params: tuple, skey: tuple) -> int:
    """A stable (process-independent) 64-bit hash of one cache identity.

    ``repr`` of the key tuple is deterministic for the str/int/float
    values queries are made of, and :func:`hashlib.blake2b` does not
    vary with :envvar:`PYTHONHASHSEED` — the same query hashes to the
    same slot in every engine process on the host.
    """
    digest = hashlib.blake2b(
        repr((kind, params, skey)).encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little")


def cache_segment_name(token: str) -> str:
    """The shared-memory segment name for a cache scope ``token``.

    Engines that should share answers (e.g. every process serving one
    shard directory) must derive the name from the same token —
    conventionally the resolved shard-directory path.
    """
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=6)
    return f"repro-anscache-{digest.hexdigest()}"


# ----------------------------------------------------------------------
# Stats (de)serialization
# ----------------------------------------------------------------------
def _stats_classes() -> dict:
    """Name -> class map of every stats type a cache may hold (resolved
    lazily; :mod:`repro.ctree.diskindex` imports the storage stack)."""
    from repro.ctree.diskindex import DiskKnnStats, DiskQueryStats
    from repro.ctree.stats import KnnStats, QueryStats

    return {
        "QueryStats": QueryStats,
        "KnnStats": KnnStats,
        "DiskQueryStats": DiskQueryStats,
        "DiskKnnStats": DiskKnnStats,
    }


def stats_to_payload(stats) -> tuple:
    """Flatten a stats object to ``(class_name, kwargs)`` for pickling.

    Only counter values (and, for subgraph stats, the per-level series)
    ride along — the registry view is rebuilt on load, so a cached stats
    object never aliases the registry of the process that stored it.
    """
    kwargs = {name: getattr(stats, name)
              for name in type(stats)._COUNTER_FIELDS}
    for series in ("x_by_level", "y_by_level", "nodes_by_level",
                   "tested_by_level"):
        if hasattr(stats, series):
            kwargs[series] = list(getattr(stats, series))
    return (type(stats).__name__, kwargs)


def stats_from_payload(payload: tuple):
    """Rebuild the stats object flattened by :func:`stats_to_payload`."""
    class_name, kwargs = payload
    try:
        cls = _stats_classes()[class_name]
    except KeyError:
        raise ConfigError(
            f"unknown stats class {class_name!r} in cached answer"
        ) from None
    return cls(**kwargs)


# ----------------------------------------------------------------------
# In-process LRU (PR 5's per-engine cache, factored out)
# ----------------------------------------------------------------------
class LRUAnswerCache:
    """Signature-keyed LRU answer cache with exact-structure buckets.

    ``capacity`` bounds the number of cached *entries* across all
    signature buckets; ``0`` disables the cache (every :meth:`get`
    misses, every :meth:`put` is dropped), which the engines also take
    as the signal to skip batch deduplication.

    A bucket key is ``(kind, params, query.signature())``; because the
    signature is isomorphism-invariant but incomplete, each bucket holds
    ``(stored_query, answers, stats)`` triples and a hit additionally
    requires :meth:`Graph.structure_equal
    <repro.graphs.graph.Graph.structure_equal>` — a colliding
    non-identical query is a miss, never a wrong answer.
    """

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = max(0, int(capacity))
        #: (kind, params, signature) -> [(query, answers, stats), ...]
        self._buckets: "OrderedDict[tuple, list]" = OrderedDict()
        self._entries = 0

    @property
    def enabled(self) -> bool:
        """Whether lookups can ever hit (capacity > 0)."""
        return self.capacity > 0

    @property
    def entries(self) -> int:
        """Cached answers currently held (across buckets)."""
        return self._entries

    def get(self, kind: str, params: tuple, query: Graph):
        """The cached ``(answers, stats)`` for an identical query, or
        ``None``."""
        if self.capacity <= 0:
            return None
        key = (kind, params, query.signature())
        bucket = self._buckets.get(key)
        if not bucket:
            return None
        for stored, answers, stats in bucket:
            if stored.structure_equal(query):
                self._buckets.move_to_end(key)
                return (answers, stats)
        return None

    def put(self, kind: str, params: tuple, query: Graph, answers,
            stats) -> None:
        """Cache one answered query (evicting oldest entries past
        capacity)."""
        if self.capacity <= 0:
            return
        key = (kind, params, query.signature())
        bucket = self._buckets.setdefault(key, [])
        bucket.append((query.copy(), list(answers), stats.copy()))
        self._buckets.move_to_end(key)
        self._entries += 1
        # Evict by *entry*, oldest bucket first, so signature collisions
        # (several structurally distinct queries in one bucket) cannot
        # grow the cache past its configured capacity.
        while self._entries > self.capacity:
            old_key, old_bucket = next(iter(self._buckets.items()))
            old_bucket.pop(0)
            self._entries -= 1
            if not old_bucket:
                del self._buckets[old_key]

    def clear(self) -> None:
        """Drop every cached answer."""
        self._buckets.clear()
        self._entries = 0


# ----------------------------------------------------------------------
# Cross-process shared-memory cache
# ----------------------------------------------------------------------
class SharedMemoryAnswerCache:
    """A signature-keyed answer cache in one shared-memory segment.

    Parameters
    ----------
    name:
        Segment name.  Engines sharing a name share the cache; derive it
        with :func:`cache_segment_name` from the index path so every
        process serving the same shard directory attaches to the same
        slab.
    slots:
        Number of direct-mapped entry slots (only read when the segment
        is created; attaching validates it against the header).
    slot_size:
        Bytes per slot, including the slot header.  Answers whose
        pickled payload does not fit are simply not cached (counted in
        ``shard.cache.oversize``).
    create:
        ``True`` creates the segment, failing if it exists; ``False``
        attaches, failing if it does not; ``None`` (default) attaches if
        present, else creates — the fleet-friendly mode.

    See the module docstring for the slab layout and concurrency rules.
    """

    def __init__(self, name: str, slots: int = 512, slot_size: int = 8192,
                 create: Optional[bool] = None) -> None:
        from multiprocessing import shared_memory

        if slots < 1:
            raise ConfigError(f"cache needs >= 1 slot, got {slots}")
        if slot_size <= _SLOT.size + 16:
            raise ConfigError(f"slot_size {slot_size} too small")
        self.name = name
        self._registry = global_registry()
        self.created = False
        size = _HEADER.size + slots * slot_size
        if create is None or create is False:
            try:
                self._shm = shared_memory.SharedMemory(name=name)
            except FileNotFoundError:
                if create is False:
                    raise
                self._shm = None
        else:
            self._shm = None
        if self._shm is None:
            self._shm = shared_memory.SharedMemory(
                name=name, create=True, size=size
            )
            self.created = True
        self._keep_segment_on_exit()
        buf = self._shm.buf
        if self.created:
            self.slots = slots
            self.slot_size = slot_size
            _HEADER.pack_into(buf, 0, _MAGIC, _VERSION, slots, slot_size,
                              0, 0)
        else:
            magic, version, got_slots, got_size, _, _ = _HEADER.unpack_from(
                buf, 0
            )
            if magic != _MAGIC or version != _VERSION:
                raise ConfigError(
                    f"shared cache {name!r} has foreign layout "
                    f"(magic={magic!r} version={version})"
                )
            self.slots = got_slots
            self.slot_size = got_size

    # -- lifecycle -----------------------------------------------------
    def _keep_segment_on_exit(self) -> None:
        """Stop the stdlib resource tracker from unlinking the segment
        when *this* process exits — the slab must outlive any one
        engine (that is its whole point); removal is explicit via
        :meth:`destroy`.
        """
        try:  # pragma: no cover - platform-dependent bookkeeping
            from multiprocessing import resource_tracker

            resource_tracker.unregister(self._shm._name, "shared_memory")
        except Exception:
            pass

    def close(self) -> None:
        """Detach from the segment (it stays alive for other engines)."""
        try:
            self._shm.close()
        except (BufferError, OSError):  # pragma: no cover - teardown race
            pass

    def destroy(self) -> None:
        """Detach and unlink the segment for every process (explicit,
        final)."""
        try:  # re-balance the tracker: unlink() unregisters internally
            from multiprocessing import resource_tracker

            resource_tracker.register(self._shm._name, "shared_memory")
        except Exception:  # pragma: no cover - bookkeeping only
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        self.close()

    # -- header helpers ------------------------------------------------
    @property
    def generation(self) -> int:
        """Current invalidation generation (bumped by :meth:`clear`)."""
        return _HEADER.unpack_from(self._shm.buf, 0)[5]

    def _set_generation(self, gen: int) -> None:
        buf = self._shm.buf
        magic, version, slots, slot_size, pad, _ = _HEADER.unpack_from(
            buf, 0
        )
        _HEADER.pack_into(buf, 0, magic, version, slots, slot_size, pad,
                          gen)

    @property
    def enabled(self) -> bool:
        """Always true: a shared cache cannot be capacity-disabled."""
        return True

    @property
    def entries(self) -> int:
        """Slots currently holding a valid current-generation answer
        (O(slots) scan; meant for tests and ``--stats``, not hot
        paths)."""
        gen = self.generation
        count = 0
        for index in range(self.slots):
            seq, slot_gen, _, length, crc = _SLOT.unpack_from(
                self._shm.buf, self._slot_offset(index)
            )
            if seq and seq % 2 == 0 and slot_gen == gen and length:
                payload = self._payload(index, length)
                if payload is not None and zlib.crc32(payload) == crc:
                    count += 1
        return count

    def clear(self) -> None:
        """Invalidate every cached answer for all attached processes by
        bumping the slab generation (O(1))."""
        self._set_generation(self.generation + 1)

    # -- slot access ---------------------------------------------------
    def _slot_offset(self, index: int) -> int:
        return _HEADER.size + index * self.slot_size

    def _payload(self, index: int, length: int) -> Optional[bytes]:
        if length > self.slot_size - _SLOT.size:
            return None
        start = self._slot_offset(index) + _SLOT.size
        return bytes(self._shm.buf[start:start + length])

    def get(self, kind: str, params: tuple, query: Graph):
        """The cached ``(answers, stats)`` for an identical query, or
        ``None`` (torn reads, stale generations, hash collisions and
        non-identical structures are all misses)."""
        skey = structure_key(query)
        khash = _key_hash(kind, params, skey)
        index = khash % self.slots
        offset = self._slot_offset(index)
        buf = self._shm.buf
        gen = self.generation
        for _ in range(_READ_RETRIES):
            seq1, slot_gen, stored_hash, length, crc = _SLOT.unpack_from(
                buf, offset
            )
            if seq1 == 0 or seq1 % 2 == 1:
                # Empty, or a writer is mid-copy; one retry round is
                # enough for the common case, then give up as a miss.
                if seq1 == 0:
                    break
                continue
            if slot_gen != gen or stored_hash != khash:
                break
            payload = self._payload(index, length)
            seq2 = _SLOT.unpack_from(buf, offset)[0]
            if payload is None or seq2 != seq1:
                self._registry.counter("shard.cache.torn_reads").inc()
                continue
            if zlib.crc32(payload) != crc:
                self._registry.counter("shard.cache.torn_reads").inc()
                break
            try:
                stored = pickle.loads(payload)
            except Exception:  # pragma: no cover - hostile/corrupt slab
                break
            s_kind, s_params, s_skey, answers, stats_payload = stored
            if (s_kind, s_params, s_skey) != (kind, params, skey):
                # 64-bit hash collision between distinct queries: the
                # exact identity check turns it into a miss.
                self._registry.counter("shard.cache.collisions").inc()
                break
            self._registry.counter("shard.cache.hits").inc()
            return (list(answers), stats_from_payload(stats_payload))
        self._registry.counter("shard.cache.misses").inc()
        return None

    def put(self, kind: str, params: tuple, query: Graph, answers,
            stats) -> None:
        """Store one answered query in its direct-mapped slot (seqlock
        write; oversized payloads are skipped, occupied slots of other
        queries are overwritten last-writer-wins)."""
        skey = structure_key(query)
        khash = _key_hash(kind, params, skey)
        payload = pickle.dumps(
            (kind, params, skey, list(answers), stats_to_payload(stats)),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        if len(payload) > self.slot_size - _SLOT.size:
            self._registry.counter("shard.cache.oversize").inc()
            return
        index = khash % self.slots
        offset = self._slot_offset(index)
        buf = self._shm.buf
        seq, old_gen, old_hash, old_len, _ = _SLOT.unpack_from(buf, offset)
        if seq % 2 == 1:  # recover from a writer that died mid-copy
            seq += 1
        gen = self.generation
        if old_len and old_hash != khash and old_gen == gen:
            self._registry.counter("shard.cache.overwrites").inc()
        # Seqlock write: odd seq marks the slot in-flux for readers.
        _SLOT.pack_into(buf, offset, seq + 1, gen, khash, len(payload), 0)
        start = offset + _SLOT.size
        buf[start:start + len(payload)] = payload
        _SLOT.pack_into(buf, offset, seq + 2, gen, khash, len(payload),
                        zlib.crc32(payload))
        self._registry.counter("shard.cache.stores").inc()

    def __repr__(self) -> str:
        return (f"<SharedMemoryAnswerCache {self.name!r} "
                f"slots={self.slots} slot_size={self.slot_size} "
                f"gen={self.generation}>")
