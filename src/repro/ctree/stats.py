"""Query statistics counters (Table 1 notation).

Every query processor fills a :class:`QueryStats`; the experiment harness
aggregates them into the paper's reported quantities: candidate set size
``|CS|``, answer set size ``|Ans|``, accuracy ``|Ans|/|CS|``, access ratio
``γ = R / |D|``, and search/verification time split.  The per-level
``x(i)``/``y(i)`` counts feed the Section 6.3 cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class QueryStats:
    """Counters for one query execution."""

    database_size: int = 0
    #: children tested against the query histogram
    histogram_tests: int = 0
    #: children surviving the histogram test (= pseudo-iso tests run); the
    #: paper's R counts these "visited and tested" nodes and graphs
    pseudo_tests: int = 0
    #: children surviving the pseudo test (descended into, or made candidates)
    pseudo_survivors: int = 0
    #: internal nodes whose children were scanned
    nodes_expanded: int = 0
    candidates: int = 0
    answers: int = 0
    #: exact isomorphism tests run in the verification phase
    isomorphism_tests: int = 0
    search_seconds: float = 0.0
    verify_seconds: float = 0.0
    #: per-depth sums: x_by_level[i] = children surviving histogram at depth i
    x_by_level: list[int] = field(default_factory=list)
    #: per-depth sums: y_by_level[i] = children surviving pseudo at depth i
    y_by_level: list[int] = field(default_factory=list)
    #: per-depth count of expanded nodes (to average x, y per node)
    nodes_by_level: list[int] = field(default_factory=list)

    # ------------------------------------------------------------------
    def record_level(self, depth: int, x: int, y: int) -> None:
        """Record one expanded node at ``depth`` with ``x`` histogram
        survivors and ``y`` pseudo survivors among its children."""
        while len(self.x_by_level) <= depth:
            self.x_by_level.append(0)
            self.y_by_level.append(0)
            self.nodes_by_level.append(0)
        self.x_by_level[depth] += x
        self.y_by_level[depth] += y
        self.nodes_by_level[depth] += 1

    @property
    def access_ratio(self) -> float:
        """γ: fraction of the database 'visited' (R / |D|).

        R counts nodes and database graphs tested by pseudo subgraph
        isomorphism, matching the paper's Section 6.3 accounting.
        """
        if self.database_size == 0:
            return 0.0
        return self.pseudo_tests / self.database_size

    @property
    def accuracy(self) -> float:
        """α = |Ans| / |CS| (1.0 for an empty candidate set)."""
        if self.candidates == 0:
            return 1.0
        return self.answers / self.candidates

    @property
    def total_seconds(self) -> float:
        return self.search_seconds + self.verify_seconds

    def merge(self, other: "QueryStats") -> None:
        """Accumulate another query's counters into this one (for averaging
        across a workload)."""
        self.database_size = max(self.database_size, other.database_size)
        self.histogram_tests += other.histogram_tests
        self.pseudo_tests += other.pseudo_tests
        self.pseudo_survivors += other.pseudo_survivors
        self.nodes_expanded += other.nodes_expanded
        self.candidates += other.candidates
        self.answers += other.answers
        self.isomorphism_tests += other.isomorphism_tests
        self.search_seconds += other.search_seconds
        self.verify_seconds += other.verify_seconds
        for depth in range(len(other.x_by_level)):
            self.record_level(
                depth, other.x_by_level[depth], other.y_by_level[depth]
            )
            # record_level bumped nodes_by_level by 1; fix to the real count
            self.nodes_by_level[depth] += other.nodes_by_level[depth] - 1


@dataclass
class KnnStats:
    """Counters for one K-NN or range query."""

    database_size: int = 0
    nodes_expanded: int = 0
    #: children whose similarity bound / distance was evaluated
    children_scored: int = 0
    #: database graphs whose (approximate) similarity was computed
    graphs_scored: int = 0
    pruned_by_bound: int = 0
    results: int = 0
    seconds: float = 0.0

    @property
    def access_ratio(self) -> float:
        """Fraction of database 'accessed': nodes expanded plus graphs
        scored, over |D| (the paper's K-NN access ratio, Fig. 11a)."""
        if self.database_size == 0:
            return 0.0
        return (self.nodes_expanded + self.graphs_scored) / self.database_size
