"""Query statistics counters (Table 1 notation).

Every query processor fills a :class:`QueryStats`; the experiment harness
aggregates them into the paper's reported quantities: candidate set size
``|CS|``, answer set size ``|Ans|``, accuracy ``|Ans|/|CS|``, access ratio
``γ = R / |D|``, and search/verification time split.  The per-level
``x(i)``/``y(i)`` counts feed the Section 6.3 cost model.

Stats objects are thin attribute views over a per-instance
:class:`~repro.obs.metrics.MetricsRegistry`: reading ``stats.pseudo_tests``
reads the registry counter ``ctree.query.pseudo_tests`` and ``+=`` writes
it back, so the same numbers are available both as plain attributes (the
historical API, unchanged) and as a metrics snapshot
(``stats.registry.snapshot()`` / ``stats.to_dict()``).  Query processors
call :meth:`publish` on completion to fold a query's counters into the
process-wide registry that ``repro metrics`` reports.

.. _gamma-accounting:

**γ accounting convention.**  The paper's access ratio is ``γ = R / |D|``
where ``R`` counts the tree nodes and database graphs *visited and
tested* during the search phase.  Throughout this library "visited and
tested" means: the child survived the histogram screen and therefore had
pseudo subgraph isomorphism evaluated against it — i.e. ``R`` is
:attr:`QueryStats.pseudo_tests` (children merely histogram-screened are
*not* counted, matching Section 6.3, where the cost model prices exactly
the pseudo-iso evaluations).  For K-NN queries (Fig. 11a) the analogous
``R`` is ``nodes_expanded + graphs_scored``: every node popped and
expanded from the priority queue plus every database graph whose
similarity was actually computed.  Denominator guards are uniform: a
non-positive ``|D|`` yields ``γ = 0.0`` and a non-positive ``|CS|``
yields accuracy ``1.0`` (an empty candidate set is vacuously accurate).
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import MetricsRegistry, global_registry


class CounterField:
    """A descriptor exposing a registry counter as a plain attribute.

    ``obj.field`` reads ``obj.registry.counter(metric).value``;
    assignment (including ``+=``) writes it back.  This is what makes a
    stats object a *view* over its registry rather than a copy.
    """

    __slots__ = ("metric",)

    def __init__(self, metric: str) -> None:
        self.metric = metric

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        return obj.registry.counter(self.metric).value

    def __set__(self, obj, value) -> None:
        obj.registry.counter(self.metric).value = value


class QueryStats:
    """Counters for one subgraph-query execution.

    Constructor keywords mirror the attribute names (the historical
    dataclass signature); all counter attributes are registry-backed
    views (see module docstring).
    """

    #: total database size |D|
    database_size = CounterField("ctree.query.database_size")
    #: children tested against the query histogram
    histogram_tests = CounterField("ctree.query.histogram_tests")
    #: children surviving the histogram test (= pseudo-iso tests run); the
    #: paper's R counts these "visited and tested" nodes and graphs — see
    #: the γ accounting convention in the module docstring
    pseudo_tests = CounterField("ctree.query.pseudo_tests")
    #: children surviving the pseudo test (descended into, or candidates)
    pseudo_survivors = CounterField("ctree.query.pseudo_survivors")
    #: internal nodes whose children were scanned
    nodes_expanded = CounterField("ctree.query.nodes_expanded")
    candidates = CounterField("ctree.query.candidates")
    answers = CounterField("ctree.query.answers")
    #: exact isomorphism tests run in the verification phase
    isomorphism_tests = CounterField("ctree.query.isomorphism_tests")
    search_seconds = CounterField("ctree.query.search_seconds")
    verify_seconds = CounterField("ctree.query.verify_seconds")

    #: the counter attributes above, in declaration order
    _COUNTER_FIELDS = (
        "database_size", "histogram_tests", "pseudo_tests",
        "pseudo_survivors", "nodes_expanded", "candidates", "answers",
        "isomorphism_tests", "search_seconds", "verify_seconds",
    )
    #: counters merged by max instead of sum (workload-level aggregation)
    _MAX_FIELDS = ("database_size",)
    #: published to the global registry as a per-query histogram
    _HISTOGRAM_FIELDS = ("candidates", "search_seconds", "verify_seconds")
    #: to_dict keys whose values depend on wall time or cache temperature,
    #: not on query logic — excluded from determinism comparisons (the
    #: batched engine guarantees everything else bit-identical per query
    #: at every worker count)
    _NONDETERMINISTIC_KEYS = ("search_seconds", "verify_seconds",
                              "total_seconds")

    def __init__(
        self,
        database_size: int = 0,
        histogram_tests: int = 0,
        pseudo_tests: int = 0,
        pseudo_survivors: int = 0,
        nodes_expanded: int = 0,
        candidates: int = 0,
        answers: int = 0,
        isomorphism_tests: int = 0,
        search_seconds: float = 0.0,
        verify_seconds: float = 0.0,
        x_by_level: Optional[list[int]] = None,
        y_by_level: Optional[list[int]] = None,
        nodes_by_level: Optional[list[int]] = None,
        tested_by_level: Optional[list[int]] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.database_size = database_size
        self.histogram_tests = histogram_tests
        self.pseudo_tests = pseudo_tests
        self.pseudo_survivors = pseudo_survivors
        self.nodes_expanded = nodes_expanded
        self.candidates = candidates
        self.answers = answers
        self.isomorphism_tests = isomorphism_tests
        self.search_seconds = search_seconds
        self.verify_seconds = verify_seconds
        #: per-depth sums: x_by_level[i] = children surviving histogram at i
        self.x_by_level: list[int] = list(x_by_level or [])
        #: per-depth sums: y_by_level[i] = children surviving pseudo at i
        self.y_by_level: list[int] = list(y_by_level or [])
        #: per-depth count of expanded nodes (to average x, y per node)
        self.nodes_by_level: list[int] = list(nodes_by_level or [])
        #: per-depth sums: children histogram-screened at i (the EXPLAIN
        #: denominator: tested - x = pruned by the closure histogram)
        self.tested_by_level: list[int] = list(tested_by_level or [])

    # ------------------------------------------------------------------
    def record_level(self, depth: int, x: int, y: int, nodes: int = 1,
                     tested: int = 0) -> None:
        """Record ``nodes`` expanded node(s) at ``depth`` that screened
        ``tested`` children, of which ``x`` survived the histogram test
        and ``y`` survived the pseudo-iso test, in total."""
        while len(self.x_by_level) <= depth:
            self.x_by_level.append(0)
            self.y_by_level.append(0)
            self.nodes_by_level.append(0)
        while len(self.tested_by_level) <= depth:
            self.tested_by_level.append(0)
        self.x_by_level[depth] += x
        self.y_by_level[depth] += y
        self.nodes_by_level[depth] += nodes
        self.tested_by_level[depth] += tested

    @property
    def access_ratio(self) -> float:
        """γ = R / |D| with R = :attr:`pseudo_tests` (see the
        γ accounting convention in the module docstring)."""
        if self.database_size <= 0:
            return 0.0
        return self.pseudo_tests / self.database_size

    @property
    def accuracy(self) -> float:
        """α = |Ans| / |CS| (1.0 for an empty candidate set)."""
        if self.candidates <= 0:
            return 1.0
        return self.answers / self.candidates

    @property
    def total_seconds(self) -> float:
        return self.search_seconds + self.verify_seconds

    def merge(self, other: "QueryStats") -> None:
        """Accumulate another query's counters into this one (for
        averaging across a workload)."""
        for name in self._COUNTER_FIELDS:
            if name in self._MAX_FIELDS:
                setattr(self, name, max(getattr(self, name),
                                        getattr(other, name)))
            else:
                setattr(self, name, getattr(self, name) + getattr(other, name))
        for depth in range(len(other.x_by_level)):
            self.record_level(
                depth,
                other.x_by_level[depth],
                other.y_by_level[depth],
                nodes=other.nodes_by_level[depth],
                tested=(other.tested_by_level[depth]
                        if depth < len(other.tested_by_level) else 0),
            )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """All counters, derived ratios, and per-level series as a
        JSON-able dict."""
        out = {name: getattr(self, name) for name in self._COUNTER_FIELDS}
        out["access_ratio"] = self.access_ratio
        out["accuracy"] = self.accuracy
        out["total_seconds"] = self.total_seconds
        out["x_by_level"] = list(self.x_by_level)
        out["y_by_level"] = list(self.y_by_level)
        out["nodes_by_level"] = list(self.nodes_by_level)
        out["tested_by_level"] = list(self.tested_by_level)
        return out

    def deterministic_dict(self) -> dict:
        """:meth:`to_dict` minus timing (and, on disk stats, page-I/O)
        keys — the part of the stats the batched query engine guarantees
        identical to a serial run at every worker count."""
        out = self.to_dict()
        for key in self._NONDETERMINISTIC_KEYS:
            out.pop(key, None)
        return out

    def copy(self):
        """An independent stats object with the same counter values
        (own registry; per-level series copied)."""
        kwargs = {name: getattr(self, name)
                  for name in self._COUNTER_FIELDS}
        kwargs.update(
            x_by_level=self.x_by_level,
            y_by_level=self.y_by_level,
            nodes_by_level=self.nodes_by_level,
            tested_by_level=self.tested_by_level,
        )
        return type(self)(**kwargs)

    def explain(self) -> dict:
        """The per-query EXPLAIN profile: the descent as per-level
        pruning counts plus phase summaries.

        Each entry of ``levels`` reports, for one tree depth, how many
        nodes were expanded, how many children were screened
        (``tested``), how many survived the closure-histogram test
        (``histogram_survivors``, the paper's ``x(i)``) and the
        pseudo-iso test (``pseudo_survivors``, ``y(i)``), and the two
        pruning deltas.  Sums across levels equal the flat counters
        (``histogram_tests``, ``pseudo_tests``, ``pseudo_survivors``)
        by construction, so an EXPLAIN payload is always consistent
        with the ``ctree.query.*`` metrics.  Disk-backed stats add a
        ``page_io`` block.
        """
        levels = []
        for depth in range(len(self.nodes_by_level)):
            tested = (self.tested_by_level[depth]
                      if depth < len(self.tested_by_level) else 0)
            x = self.x_by_level[depth]
            y = self.y_by_level[depth]
            levels.append({
                "level": depth,
                "nodes": self.nodes_by_level[depth],
                "tested": tested,
                "histogram_survivors": x,
                "pseudo_survivors": y,
                "pruned_by_closure": tested - x,
                "pruned_by_pseudo_iso": x - y,
            })
        out = {
            "kind": "subgraph",
            "database_size": self.database_size,
            "levels": levels,
            "pruning": {
                "histogram_tests": self.histogram_tests,
                "pruned_by_closure": (self.histogram_tests
                                      - self.pseudo_tests),
                "pseudo_iso_tests": self.pseudo_tests,
                "pruned_by_pseudo_iso": (self.pseudo_tests
                                         - self.pseudo_survivors),
                "candidates": self.candidates,
            },
            "verification": {
                "isomorphism_tests": self.isomorphism_tests,
                "answers": self.answers,
                "accuracy": self.accuracy,
                "verify_seconds": self.verify_seconds,
            },
            "access_ratio": self.access_ratio,
            "search_seconds": self.search_seconds,
        }
        self._add_page_io(out)
        return out

    def _add_page_io(self, out: dict) -> None:
        """Attach a ``page_io`` block when this stats object tracks
        buffer-pool counters (the disk-backed subclasses do)."""
        if "page_hits" not in self._COUNTER_FIELDS:
            return
        hits = self.page_hits
        misses = self.page_misses
        total = hits + misses
        out["page_io"] = {
            "hits": hits,
            "misses": misses,
            "hit_ratio": (hits / total) if total else 1.0,
        }

    def publish(self, registry: Optional[MetricsRegistry] = None) -> None:
        """Fold this query's counters into ``registry`` (default: the
        process-wide one) and observe per-query histograms."""
        target = registry if registry is not None else global_registry()
        for metric in self.registry:
            if metric.name.endswith(".database_size"):
                continue  # |D| is a property of the index, not a cost
            target.counter(metric.name).inc(metric.value)
        cls = type(self).__mro__[-2]  # prefix owner: QueryStats or KnnStats
        prefix = cls._COUNT_METRIC.rsplit(".", 1)[0]
        target.counter(cls._COUNT_METRIC).inc()
        for name in self._HISTOGRAM_FIELDS:
            target.histogram(f"{prefix}.per_query.{name}").observe(
                getattr(self, name)
            )

    _COUNT_METRIC = "ctree.query.count"

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}={getattr(self, name)!r}" for name in self._COUNTER_FIELDS
        )
        return f"{type(self).__name__}({parts})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, QueryStats):
            return NotImplemented
        return self.to_dict() == other.to_dict()


class KnnStats:
    """Counters for one K-NN or range query (same registry-view design
    as :class:`QueryStats`; γ convention in the module docstring)."""

    database_size = CounterField("ctree.knn.database_size")
    nodes_expanded = CounterField("ctree.knn.nodes_expanded")
    #: children whose similarity bound / distance was evaluated
    children_scored = CounterField("ctree.knn.children_scored")
    #: database graphs whose (approximate) similarity was computed
    graphs_scored = CounterField("ctree.knn.graphs_scored")
    pruned_by_bound = CounterField("ctree.knn.pruned_by_bound")
    results = CounterField("ctree.knn.results")
    seconds = CounterField("ctree.knn.seconds")

    _COUNTER_FIELDS = (
        "database_size", "nodes_expanded", "children_scored",
        "graphs_scored", "pruned_by_bound", "results", "seconds",
    )
    _MAX_FIELDS = ("database_size",)
    _HISTOGRAM_FIELDS = ("graphs_scored", "seconds")
    _COUNT_METRIC = "ctree.knn.count"
    _NONDETERMINISTIC_KEYS = ("seconds",)

    def __init__(
        self,
        database_size: int = 0,
        nodes_expanded: int = 0,
        children_scored: int = 0,
        graphs_scored: int = 0,
        pruned_by_bound: int = 0,
        results: int = 0,
        seconds: float = 0.0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.database_size = database_size
        self.nodes_expanded = nodes_expanded
        self.children_scored = children_scored
        self.graphs_scored = graphs_scored
        self.pruned_by_bound = pruned_by_bound
        self.results = results
        self.seconds = seconds

    @property
    def access_ratio(self) -> float:
        """Fraction of database 'accessed': nodes expanded plus graphs
        scored, over |D| (the paper's K-NN access ratio, Fig. 11a; see
        the γ accounting convention in the module docstring)."""
        if self.database_size <= 0:
            return 0.0
        return (self.nodes_expanded + self.graphs_scored) / self.database_size

    def merge(self, other: "KnnStats") -> None:
        """Accumulate another query's counters (for workload averages)."""
        for name in self._COUNTER_FIELDS:
            if name in self._MAX_FIELDS:
                setattr(self, name, max(getattr(self, name),
                                        getattr(other, name)))
            else:
                setattr(self, name, getattr(self, name) + getattr(other, name))

    def to_dict(self) -> dict:
        out = {name: getattr(self, name) for name in self._COUNTER_FIELDS}
        out["access_ratio"] = self.access_ratio
        return out

    def copy(self):
        """An independent stats object with the same counter values."""
        return type(self)(**{name: getattr(self, name)
                             for name in self._COUNTER_FIELDS})

    def explain(self) -> dict:
        """The per-query EXPLAIN profile for a K-NN/range query.

        K-NN descends a priority queue rather than level-synchronous
        refinement, so there is no per-level series; the profile
        reports the expansion/scoring/bound-pruning counters and, for
        disk-backed stats, a ``page_io`` block.
        """
        out = {
            "kind": "knn",
            "database_size": self.database_size,
            "expansion": {
                "nodes_expanded": self.nodes_expanded,
                "children_scored": self.children_scored,
                "graphs_scored": self.graphs_scored,
                "pruned_by_bound": self.pruned_by_bound,
                "results": self.results,
            },
            "access_ratio": self.access_ratio,
            "seconds": self.seconds,
        }
        self._add_page_io(out)
        return out

    deterministic_dict = QueryStats.deterministic_dict
    publish = QueryStats.publish
    _add_page_io = QueryStats._add_page_io

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}={getattr(self, name)!r}" for name in self._COUNTER_FIELDS
        )
        return f"{type(self).__name__}({parts})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, KnnStats):
            return NotImplemented
        return self.to_dict() == other.to_dict()
