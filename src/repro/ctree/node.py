"""C-tree nodes (Section 5.1).

A node is a graph closure of its children.  Leaf nodes hold database graphs
(wrapped in :class:`LeafEntry` so each carries its database id); internal
nodes hold child nodes.  Every node caches its closure and the closure's
label histogram — the two summaries the query processors prune with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional, Union

from repro.graphs.closure import GraphClosure, GraphLike, as_closure
from repro.graphs.graph import Graph
from repro.graphs.histogram import LabelHistogram

#: A mapper takes two graph-like objects and returns a GraphMapping.
Mapper = Callable[[GraphLike, GraphLike], "object"]


def fold_closure(
    base: Optional[GraphClosure], addition: GraphLike, mapper: Mapper
) -> GraphClosure:
    """Union one more graph-like object into a closure (the Section 3
    incremental closure step).

    Returns a *new* closure covering both ``base`` and ``addition``
    (``base is None`` starts a fresh closure).  This is the single
    summary-maintenance primitive shared by the in-memory tree
    (:meth:`CTreeNode.extend_summary`) and the disk index's incremental
    insert path, so both enlarge closures identically.
    """
    added = as_closure(addition)
    if base is None:
        return added.copy()
    return mapper(base, added).closure()


def fold_closure_set(
    items: Iterable[GraphLike], mapper: Mapper
) -> Optional[GraphClosure]:
    """Fold a whole sequence of graph-like objects into one closure
    (``None`` for an empty sequence).

    This is the recompute-from-members primitive the delete paths share:
    after a removal, a node's summary is re-derived by folding the
    surviving children in order, exactly as a split re-folds its two
    groups — so shrink-after-delete and split produce identical
    closures for identical member lists.
    """
    closure: Optional[GraphClosure] = None
    for item in items:
        closure = fold_closure(closure, item, mapper)
    return closure


@dataclass
class LeafEntry:
    """A database graph stored at a leaf.

    The graph's label histogram is cached on first use — Alg. 3 tests it
    on every query that reaches the leaf.
    """

    graph_id: int
    graph: Graph
    _histogram: Optional[LabelHistogram] = None

    @property
    def histogram(self) -> LabelHistogram:
        if self._histogram is None:
            self._histogram = LabelHistogram.of(self.graph)
        return self._histogram

    def __repr__(self) -> str:
        return f"<LeafEntry #{self.graph_id} {self.graph!r}>"


Child = Union["CTreeNode", LeafEntry]


class CTreeNode:
    """One node of a C-tree."""

    __slots__ = ("is_leaf", "children", "closure", "histogram", "parent")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.children: list[Child] = []
        self.closure: Optional[GraphClosure] = None
        self.histogram: Optional[LabelHistogram] = None
        self.parent: Optional["CTreeNode"] = None

    # ------------------------------------------------------------------
    @property
    def fanout(self) -> int:
        return len(self.children)

    def height(self) -> int:
        """0 for leaves, 1 + child height otherwise."""
        node, h = self, 0
        while not node.is_leaf:
            node = node.children[0]  # type: ignore[assignment]
            h += 1
        return h

    @staticmethod
    def child_closure(child: Child) -> GraphClosure:
        """The closure summarizing one child (a graph's singleton closure,
        or an inner node's cached closure)."""
        if isinstance(child, LeafEntry):
            return as_closure(child.graph)
        assert child.closure is not None, "inner node without closure"
        return child.closure

    @staticmethod
    def child_graph_like(child: Child) -> GraphLike:
        """The graph-like object tested during queries: the raw graph for
        leaf entries (cheaper than its closure view), the closure for
        nodes."""
        if isinstance(child, LeafEntry):
            return child.graph
        assert child.closure is not None
        return child.closure

    @staticmethod
    def child_histogram(child: Child) -> LabelHistogram:
        assert child.histogram is not None
        return child.histogram

    # ------------------------------------------------------------------
    def add_child(self, child: Child) -> None:
        self.children.append(child)
        if isinstance(child, CTreeNode):
            child.parent = self

    def remove_child(self, child: Child) -> None:
        self.children.remove(child)
        if isinstance(child, CTreeNode):
            child.parent = None

    # ------------------------------------------------------------------
    def extend_summary(self, addition: GraphLike, mapper: Mapper) -> None:
        """Enlarge this node's closure/histogram to cover ``addition``
        (incremental closure, Section 3)."""
        self.closure = fold_closure(self.closure, addition, mapper)
        self.histogram = LabelHistogram.of(self.closure)

    def rebuild_summary(self, mapper: Mapper) -> None:
        """Recompute closure/histogram from scratch over all children
        (used after deletions, when closures must shrink)."""
        self.closure = None
        self.histogram = None
        for child in self.children:
            self.extend_summary(self.child_closure(child), mapper)

    # ------------------------------------------------------------------
    def iter_leaf_entries(self) -> Iterator[LeafEntry]:
        """All database graphs below this node."""
        if self.is_leaf:
            for child in self.children:
                assert isinstance(child, LeafEntry)
                yield child
        else:
            for child in self.children:
                assert isinstance(child, CTreeNode)
                yield from child.iter_leaf_entries()

    def count_nodes(self) -> int:
        """Number of tree nodes in this subtree (including self)."""
        if self.is_leaf:
            return 1
        return 1 + sum(
            child.count_nodes()
            for child in self.children
            if isinstance(child, CTreeNode)
        )

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else "node"
        return f"<CTreeNode {kind} fanout={self.fanout}>"
