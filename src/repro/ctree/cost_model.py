"""Performance model for subgraph queries (Section 6.3).

The paper models the expected number of visited nodes/graphs below a level-i
node as

    R(i) = x(i) + y(i) * R(i+1),   R(h) = 1                    (Eqn. 11)

where ``x(i)`` children survive the histogram test (and are visited/tested
by pseudo subgraph isomorphism) and ``y(i)`` survive the pseudo test (and
are traced down).  Both are modeled as exponentially decaying with depth:

    x(i) = c1 * k * rho^-i,   y(i) = c2 * k * rho^-i           (Eqn. 13)

with the constants estimated empirically.  The access ratio estimate is
``gamma = (1 + R(0)) / |D|``.

:func:`fit_cost_model` estimates (c1, c2, rho) from measured per-level
averages by log-linear least squares with a shared decay slope;
:meth:`CostModel.estimated_access_ratio` evaluates Eqn. (12).  This module
powers the "Estimated" curves of Figs. 8(a) and 9(b).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import ConfigError
from repro.ctree.stats import QueryStats


@dataclass(frozen=True)
class CostModel:
    """Fitted Eqn. (13) parameters for one C-tree + workload."""

    c1: float
    c2: float
    rho: float
    fanout: float  # k
    height: float  # h: number of modeled levels (graphs sit at level h)
    database_size: int

    def x(self, i: int) -> float:
        return self.c1 * self.fanout * self.rho ** (-i)

    def y(self, i: int) -> float:
        return self.c2 * self.fanout * self.rho ** (-i)

    def estimated_r0(self) -> float:
        """Eqn. (12): R(0) = sum_i x(i) prod_{j<i} y(j) + prod_i y(i)."""
        h = int(self.height)
        total = 0.0
        prefix = 1.0
        for i in range(h):
            total += self.x(i) * prefix
            prefix *= self.y(i)
        return total + prefix

    def estimated_access_ratio(self) -> float:
        """gamma = (1 + R(0)) / |D|."""
        if self.database_size == 0:
            return 0.0
        return (1.0 + self.estimated_r0()) / self.database_size

    def estimated_query_seconds(
        self,
        visit_seconds: float,
        isomorphism_seconds: float,
        candidate_count: float,
    ) -> float:
        """Eqn. (10): ``T_query = |D| * gamma * T_visit + |CS| * T_isom``.

        ``visit_seconds`` is the average cost of testing one node/graph
        during the search phase and ``isomorphism_seconds`` the average
        exact-verification cost; both are measured empirically by the
        caller (e.g. from :class:`~repro.ctree.stats.QueryStats` timings).
        """
        search = self.database_size * self.estimated_access_ratio() * visit_seconds
        verify = candidate_count * isomorphism_seconds
        return search + verify


def per_level_averages(stats: QueryStats) -> tuple[list[float], list[float]]:
    """Average x(i) and y(i) per expanded node at each depth, from merged
    query statistics."""
    xs, ys = [], []
    for i, n in enumerate(stats.nodes_by_level):
        if n <= 0:
            xs.append(0.0)
            ys.append(0.0)
        else:
            xs.append(stats.x_by_level[i] / n)
            ys.append(stats.y_by_level[i] / n)
    return xs, ys


def fit_cost_model(
    xs: Sequence[float],
    ys: Sequence[float],
    fanout: float,
    database_size: int,
) -> CostModel:
    """Fit Eqn. (13) by least squares on logs with a shared slope.

    Levels where either average is zero are excluded from the fit (log is
    undefined there); at least one usable level is required.
    """
    levels = [i for i in range(min(len(xs), len(ys))) if xs[i] > 0 and ys[i] > 0]
    if not levels:
        raise ConfigError("cost model fit needs at least one non-zero level")
    h = float(max(len(xs), len(ys)))

    if len(levels) == 1:
        i = levels[0]
        # One level: no decay information; assume rho = 1.
        return CostModel(
            c1=xs[i] / fanout,
            c2=ys[i] / fanout,
            rho=1.0,
            fanout=fanout,
            height=h,
            database_size=database_size,
        )

    # Shared-slope regression: log v = a_series - i * s.
    mean_i = sum(levels) / len(levels)
    denom = sum((i - mean_i) ** 2 for i in levels)
    log_x = {i: math.log(xs[i]) for i in levels}
    log_y = {i: math.log(ys[i]) for i in levels}
    mean_lx = sum(log_x.values()) / len(levels)
    mean_ly = sum(log_y.values()) / len(levels)
    # Stack both series; the shared slope is the average of per-series
    # least-squares slopes (identical denominators make this exact for the
    # stacked problem).
    slope_x = sum((i - mean_i) * (log_x[i] - mean_lx) for i in levels) / denom
    slope_y = sum((i - mean_i) * (log_y[i] - mean_ly) for i in levels) / denom
    s = -(slope_x + slope_y) / 2.0  # s = log rho
    a_x = mean_lx + s * mean_i
    a_y = mean_ly + s * mean_i
    return CostModel(
        c1=math.exp(a_x) / fanout,
        c2=math.exp(a_y) / fanout,
        rho=math.exp(s),
        fanout=fanout,
        height=h,
        database_size=database_size,
    )


def fit_from_stats(
    stats: QueryStats,
    fanout: float,
) -> CostModel:
    """Convenience: fit directly from merged :class:`QueryStats`."""
    xs, ys = per_level_averages(stats)
    return fit_cost_model(xs, ys, fanout, stats.database_size)


def mean_fanout(tree) -> float:
    """Average number of children per C-tree node — the ``k`` of Eqn. (13).

    Counts graphs at leaves and nodes at internal nodes, averaged over all
    tree nodes.
    """
    counts: list[int] = []

    def walk(node) -> None:
        counts.append(node.fanout)
        if not node.is_leaf:
            for child in node.children:
                walk(child)

    walk(tree.root)
    return sum(counts) / len(counts) if counts else 0.0


def direct_estimate_r0(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Plug measured per-level averages straight into Eqn. (11) without
    fitting the exponential form — a sanity check on the model."""
    r = 1.0
    for i in range(min(len(xs), len(ys)) - 1, -1, -1):
        r = xs[i] + ys[i] * r
    return r
