"""Closure-tree: the paper's core contribution."""

from repro.ctree.bulkload import bulk_load
from repro.ctree.cost_model import (
    CostModel,
    direct_estimate_r0,
    fit_cost_model,
    fit_from_stats,
    mean_fanout,
    per_level_averages,
)
from repro.ctree.diskindex import (
    DiskCTree,
    DiskKnnStats,
    DiskQueryStats,
    DiskRecovery,
    FsckReport,
)
from repro.ctree.node import CTreeNode, LeafEntry
from repro.ctree.parallel import BatchReport, QueryEngine
from repro.ctree.persistence import (
    index_size_bytes,
    load_tree,
    save_tree,
    tree_from_dict,
    tree_to_dict,
    validate_tree,
)
from repro.ctree.similarity_query import (
    closure_distance_lower_bound,
    knn_query,
    knn_query_many,
    linear_scan_knn,
    range_query,
)
from repro.ctree.stats import KnnStats, QueryStats
from repro.ctree.subgraph_query import (
    linear_scan_subgraph_query,
    subgraph_query,
    subgraph_query_many,
)
from repro.ctree.tree import CTree

__all__ = [
    "BatchReport",
    "CTree",
    "CTreeNode",
    "CostModel",
    "DiskCTree",
    "DiskKnnStats",
    "DiskQueryStats",
    "DiskRecovery",
    "FsckReport",
    "KnnStats",
    "LeafEntry",
    "QueryEngine",
    "QueryStats",
    "bulk_load",
    "closure_distance_lower_bound",
    "direct_estimate_r0",
    "fit_cost_model",
    "fit_from_stats",
    "index_size_bytes",
    "knn_query",
    "knn_query_many",
    "linear_scan_knn",
    "linear_scan_subgraph_query",
    "load_tree",
    "mean_fanout",
    "per_level_averages",
    "range_query",
    "save_tree",
    "subgraph_query",
    "subgraph_query_many",
    "tree_from_dict",
    "tree_to_dict",
    "validate_tree",
]
