"""Parallel batched query engine over a shared read-only C-tree.

The paper (and PRs 1-4) optimize one query at a time; the serving metric
that matters at scale is *batch throughput* over a shared immutable index
(cf. the reachability-index survey and MSQ-Index evaluations).
:class:`QueryEngine` answers batches of subgraph and K-NN queries using

- a persistent :mod:`multiprocessing` worker pool (fork start method).
  An in-memory :class:`~repro.ctree.tree.CTree` is inherited by the
  workers copy-on-write — including its memoized
  :class:`~repro.graphs.labelspace.TargetContext` caches, so forked
  workers start warm.  A :class:`~repro.ctree.diskindex.DiskCTree` is
  reopened per worker as an independent read-only handle over the same
  page file (``wal=False`` — workers never write);
- an LRU **answer cache** keyed by :meth:`Graph.signature()
  <repro.graphs.graph.Graph.signature>` (buckets verified by exact
  structural equality, so an incomplete-invariant collision can never
  return a wrong answer);
- **batch deduplication**: structurally identical queries in one batch
  execute once and fan out to every position.

**Determinism.**  ``query_many(queries, workers=W)`` returns answers
bit-identical to the serial loop ``[subgraph_query(tree, q) for q in
queries]`` for every ``W``, in input order.  Per-query stats are
logically identical too (:meth:`QueryStats.deterministic_dict
<repro.ctree.stats.QueryStats.deterministic_dict>`); only wall-clock
timings and disk page-I/O temperatures vary with the execution schedule.
Worker-side metrics are shipped home as registry snapshot deltas and
folded into the parent's global registry
(:meth:`~repro.obs.metrics.MetricsRegistry.merge`), so a parallel run
reports the same process-wide totals as a serial one.

**Read-only contract.**  Workers fork (or reopen) the index as it exists
at pool creation.  Mutating the index mid-flight is not supported; call
:meth:`QueryEngine.refresh` after a mutation to drop the answer cache
and expose the new state.  For a disk index the long-lived pool
survives the refresh: the engine bumps an *index epoch* that rides on
every task, and each worker lazily swaps its read-only handle the
first time it sees a task from a newer epoch — no respawn, so
incremental appends, deletes, and compactions become visible to
pre-forked workers at the cost of one reopen per worker.  In-memory
trees are shared by fork-time copy-on-write and still require a
respawn.

On platforms without the ``fork`` start method the engine degrades to
serial in-process execution (caching still applies); answers are
identical either way.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.graphs.graph import Graph
from repro.obs import trace
from repro.obs.metrics import global_registry
from repro.ctree.diskindex import DiskCTree
from repro.ctree.shardcache import LRUAnswerCache
from repro.ctree.shardcache import structure_key as _structure_key
from repro.ctree.similarity_query import knn_query
from repro.ctree.stats import KnnStats, QueryStats
from repro.ctree.subgraph_query import subgraph_query
from repro.ctree.tree import CTree

__all__ = ["BatchReport", "QueryEngine"]

Index = Union[CTree, DiskCTree]

_KIND_SUBGRAPH = "subgraph"
_KIND_KNN = "knn"

#: worker-process globals: the index handle queries run against, the
#: index epoch that handle reflects, and how to reopen it (disk only)
_WORKER_INDEX: Optional[Index] = None
_WORKER_EPOCH: int = 0
_WORKER_DISK_PATH = None
_WORKER_CACHE_PAGES: int = 128


def _worker_init(index: Optional[Index], disk_path, cache_pages: int,
                 epoch: int = 0) -> None:
    """Pool initializer: adopt the fork-inherited in-memory tree, or open
    an independent read-only handle on the shared page file."""
    global _WORKER_INDEX, _WORKER_EPOCH, _WORKER_DISK_PATH, \
        _WORKER_CACHE_PAGES
    # An inherited tracing sink would interleave span writes from every
    # worker into the parent's file; workers instead capture spans into
    # a scratch tracer per traced task and ship them home (_worker_run).
    trace.disable()
    _WORKER_EPOCH = epoch
    _WORKER_DISK_PATH = disk_path
    _WORKER_CACHE_PAGES = cache_pages
    if disk_path is not None:
        _WORKER_INDEX = DiskCTree.open(
            disk_path, cache_pages=cache_pages, wal=False, auto_recover=False
        )
    else:
        _WORKER_INDEX = index


def _worker_sync_epoch(epoch: int) -> None:
    """Swap this worker's read-only disk handle when the parent has
    committed a newer index generation (task epoch ahead of ours).

    The stale handle is closed with header writes suppressed — a
    read-only worker must never clobber the writer's live header — and
    the index is reopened cold at the same path.  In-memory indexes
    have no path to reopen; they are refreshed by pool respawn instead.
    """
    global _WORKER_INDEX, _WORKER_EPOCH
    if epoch == _WORKER_EPOCH or _WORKER_DISK_PATH is None:
        return
    stale = _WORKER_INDEX
    if stale is not None:
        stale.pool.pagefile.defer_header = True
        stale.close()
    _WORKER_INDEX = DiskCTree.open(
        _WORKER_DISK_PATH, cache_pages=_WORKER_CACHE_PAGES,
        wal=False, auto_recover=False,
    )
    _WORKER_EPOCH = epoch
    global_registry().counter("engine.worker_reopens").inc()


def _execute(index: Index, kind: str, query: Graph, params: tuple):
    """Run one query against ``index`` — the exact same code path the
    serial API uses, so results are bit-identical by construction."""
    if kind == _KIND_SUBGRAPH:
        level, verify = params
        if isinstance(index, DiskCTree):
            return index.subgraph_query(query, level=level, verify=verify)
        return subgraph_query(index, query, level=level, verify=verify)
    k, mapping_method = params
    if isinstance(index, DiskCTree):
        return index.knn_query(query, k, mapping_method=mapping_method)
    return knn_query(index, query, k, mapping_method=mapping_method)


def _worker_run(task):
    """Execute one deduplicated query in a worker; returns the result
    plus the registry delta it caused, its busy time, and — when the
    parent shipped a trace context — the span records it produced.

    Tracing is disabled in workers (see :func:`_worker_init`), so for a
    traced batch the worker records into a scratch tracer
    (:func:`repro.obs.trace.capture`) under an ``engine.task`` root and
    ships the serialized records home with the result; the parent
    splices them into its own trace via
    :func:`~repro.obs.trace.fold_worker_records` — exactly how worker
    metrics ride home as registry deltas.
    """
    task_id, kind, query, params, ctx, epoch = task
    registry = global_registry()
    before = registry.snapshot()
    # After the snapshot, so a handle swap's counter rides the delta.
    _worker_sync_epoch(epoch)
    spans: list = []
    start = time.perf_counter()
    if ctx is not None:
        with trace.capture() as spans:
            with trace.span("engine.task", task_id=task_id, kind=kind,
                            pid=os.getpid()):
                answers, stats = _execute(_WORKER_INDEX, kind, query, params)
    else:
        answers, stats = _execute(_WORKER_INDEX, kind, query, params)
    busy = time.perf_counter() - start
    return (task_id, answers, stats, registry.diff(before), busy, spans)


@dataclass
class BatchReport:
    """What one ``query_many``/``knn_many`` call did (also folded into
    the ``engine.*`` metrics)."""

    kind: str
    queries: int
    #: structurally distinct queries after cache hits were removed
    dispatched: int
    cache_hits: int
    workers: int
    #: True when a worker pool executed the batch (False: in-process)
    parallel: bool
    wall_seconds: float
    #: summed per-query execution time across workers
    busy_seconds: float

    @property
    def throughput(self) -> float:
        """Queries answered per second of batch wall time."""
        return self.queries / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of the batch answered from the LRU answer cache."""
        return self.cache_hits / self.queries if self.queries else 0.0

    @property
    def utilization(self) -> float:
        """Fraction of the pool's capacity spent executing queries."""
        capacity = self.workers * self.wall_seconds
        return self.busy_seconds / capacity if capacity else 0.0


class QueryEngine:
    """Batched subgraph/K-NN query execution over one read-only index.

    Parameters
    ----------
    index:
        A built :class:`~repro.ctree.tree.CTree` or an open
        :class:`~repro.ctree.diskindex.DiskCTree`.
    workers:
        Default pool size for batches (overridable per call).  ``1``
        executes in-process.
    cache_size:
        Maximum number of cached answers (LRU).  ``0`` disables both the
        answer cache and batch deduplication — every query executes.
    cache_pages:
        Buffer-pool capacity of each per-worker disk handle.
    cache:
        An injected answer-cache object (anything with the
        :mod:`repro.ctree.shardcache` interface — ``get``/``put``/
        ``clear``/``entries``/``enabled``).  Overrides ``cache_size``;
        pass a :class:`~repro.ctree.shardcache.SharedMemoryAnswerCache`
        to share answers across engine processes.  The default is the
        historical in-process :class:`~repro.ctree.shardcache.\
LRUAnswerCache` — behavior unchanged.
    shards:
        With ``shards > 1`` the engine re-partitions the index into S
        in-memory C-trees and delegates every batch to a
        :class:`~repro.ctree.shards.ShardedEngine` (one worker process
        per shard, scatter-gather merge).  Answers then follow the
        sharded canonical forms: subgraph answer lists sorted by graph
        id, K-NN in ``(-similarity, id)`` tie order.  ``workers`` is
        ignored on this path — fan-out is per shard.

    Use as a context manager, or call :meth:`close` to reap the pool.

    The worker pool is **long-lived**: it is spawned once (lazily on the
    first parallel batch, or eagerly via :meth:`start`) and reused by
    every subsequent batch, so steady-state serving pays no fork or
    copy-on-write cost per batch.  The HTTP serving layer
    (:mod:`repro.server`) calls :meth:`start` before accepting traffic
    and :meth:`refresh` after an index mutation.

    Examples
    --------
    Serve a batch and inspect what the engine did::

        from repro.ctree.bulkload import bulk_load
        from repro.ctree.parallel import QueryEngine

        tree = bulk_load(graphs, min_fanout=10)
        with QueryEngine(tree, workers=4).start() as engine:
            results = engine.query_many(queries)       # [(answers, stats)]
            report = engine.last_batch
            print(report.throughput, report.cache_hit_rate)
    """

    def __init__(
        self,
        index: Index,
        workers: int = 1,
        cache_size: int = 256,
        cache_pages: int = 128,
        cache=None,
        shards: int = 1,
    ) -> None:
        self._index = index
        self.workers = max(1, int(workers))
        self._cache_pages = cache_pages
        #: the answer cache — injected, or the historical in-process LRU
        self._cache = cache if cache is not None \
            else LRUAnswerCache(cache_size)
        self._sharded = None
        if shards > 1:
            # Lazy import: shards.py composes this module's BatchReport.
            from repro.ctree.shards import ShardSet, ShardedEngine

            self._sharded = ShardedEngine(
                ShardSet.from_index(index, shards),
                cache=self._cache, cache_pages=cache_pages,
            )
        self._pool = None
        self._pool_workers = 0
        #: bumped by refresh(); rides on every task so pre-forked disk
        #: workers know when to swap their read-only handle
        self._epoch = 0
        self._refresh_hooks: list = []
        self.last_batch: Optional[BatchReport] = None
        disk = isinstance(index, DiskCTree)
        self._fork_ok = (
            "fork" in multiprocessing.get_all_start_methods()
            and (not disk or index.path is not None)
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def query_many(
        self,
        queries: Sequence[Graph],
        level=1,
        verify: bool = True,
        workers: Optional[int] = None,
    ) -> list[tuple[list[int], QueryStats]]:
        """Answer a batch of subgraph queries.

        Returns ``[(answers, stats), ...]`` in input order,
        bit-identical to the serial per-query loop at every worker
        count.  ``level`` and ``verify`` mean exactly what they mean on
        :func:`~repro.ctree.subgraph_query.subgraph_query`; ``workers``
        overrides the engine default for this batch only.

        Examples
        --------
        ::

            with QueryEngine(tree, workers=4) as engine:
                for answers, stats in engine.query_many(queries):
                    print(sorted(answers), stats.candidates)
            # identical to: [subgraph_query(tree, q) for q in queries]
        """
        if self._sharded is not None:
            results = self._sharded.query_many(queries, level=level,
                                               verify=verify)
            self.last_batch = self._sharded.last_batch
            return results
        return self._run_batch(
            _KIND_SUBGRAPH, queries, (level, verify), workers
        )

    def knn_many(
        self,
        queries: Sequence[Graph],
        k: int,
        mapping_method: str = "nbm",
        workers: Optional[int] = None,
    ) -> list[tuple[list[tuple[int, float]], KnnStats]]:
        """Answer a batch of K-NN queries (same guarantees as
        :meth:`query_many`).

        Returns ``[(results, stats), ...]`` in input order, where each
        ``results`` is the ``[(graph_id, similarity), ...]`` list that
        :func:`~repro.ctree.similarity_query.knn_query` returns.

        Examples
        --------
        ::

            with QueryEngine(tree) as engine:
                (neighbors, stats), = engine.knn_many([probe], k=5)
                best_id, best_sim = neighbors[0]
        """
        if self._sharded is not None:
            results = self._sharded.knn_many(queries, k,
                                             mapping_method=mapping_method)
            self.last_batch = self._sharded.last_batch
            return results
        return self._run_batch(_KIND_KNN, queries, (k, mapping_method),
                               workers)

    def start(self, workers: Optional[int] = None) -> "QueryEngine":
        """Eagerly spawn the long-lived worker pool; returns ``self``.

        Without this, the pool forks lazily on the first parallel batch
        — fine for scripts, but a serving process wants the fork (and
        its copy-on-write page sharing) to happen once at startup,
        before traffic and before the process grows threads.  Calling
        :meth:`start` when the pool already exists at the right size is
        a no-op.

        Examples
        --------
        ::

            engine = QueryEngine(tree, workers=4).start()  # forks now
            engine.query_many(batch)                       # no fork here
        """
        if self._sharded is not None:
            self._sharded.start()
            return self
        if workers is not None:
            self.workers = max(1, int(workers))
        if self.workers > 1 and self._fork_ok:
            self._ensure_pool(self.workers)
        return self

    def refresh(self) -> None:
        """Drop the answer cache and expose the mutated index to the
        workers — call after every index mutation.

        For a **disk index** the long-lived pool is kept: the engine
        bumps its index epoch, and each worker swaps its read-only
        handle the first time a task from the new epoch reaches it
        (``engine.worker_reopens`` counts the swaps).  An incremental
        append therefore becomes visible to pre-forked workers without
        a pool restart.  An **in-memory** tree is shared by fork-time
        copy-on-write, so its pool is respawned immediately (the new
        workers re-inherit the tree as it now exists) and the next
        query never pays the fork.  Hooks registered via
        :meth:`on_refresh` run last — the HTTP server uses this to
        invalidate anything it derived from the old index generation.
        """
        self._cache.clear()
        self._epoch += 1
        if isinstance(self._index, DiskCTree) and self._pool is not None:
            # Workers reopen lazily on the next task from this epoch.
            for hook in self._refresh_hooks:
                hook(self)
            return
        had_pool = self._pool_workers
        self._close_pool()
        if had_pool > 1:
            self._ensure_pool(had_pool)
        for hook in self._refresh_hooks:
            hook(self)

    def on_refresh(self, hook) -> None:
        """Register ``hook(engine)`` to run after every :meth:`refresh`."""
        self._refresh_hooks.append(hook)

    def close(self) -> None:
        """Reap the worker pool (idempotent)."""
        if self._sharded is not None:
            self._sharded.close()
        self._close_pool()

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------
    def _run_batch(self, kind, queries, params, workers):
        queries = list(queries)
        n = len(queries)
        if n == 0:
            return []
        effective = self.workers if workers is None else max(1, int(workers))
        registry = global_registry()
        start = time.perf_counter()
        results: list = [None] * n
        hits = 0
        # Deduplicated execution plan: exact structural key -> (query,
        # positions).  Insertion order fixes the dispatch order, so the
        # plan is deterministic for a given batch at every worker count.
        pending: "OrderedDict[tuple, tuple]" = OrderedDict()
        with trace.span("engine.batch", kind=kind, queries=n,
                        workers=effective) as sp:
            for pos, query in enumerate(queries):
                cached = self._cache.get(kind, params, query)
                if cached is not None:
                    answers, stats = cached
                    results[pos] = (list(answers), stats.copy())
                    hits += 1
                    continue
                if self._cache.enabled:
                    key = (query.signature(), _structure_key(query))
                else:
                    key = pos  # dedup off: one task per position
                if key in pending:
                    pending[key][1].append(pos)
                else:
                    pending[key] = (query, [pos])

            # Exported under the engine.batch span: worker-side spans
            # re-parent here, keeping one coherent tree per request.
            ctx = trace.export_context()
            tasks = [
                (task_id, kind, query, params, ctx, self._epoch)
                for task_id, (query, _) in enumerate(pending.values())
            ]
            parallel = (effective > 1 and self._fork_ok and len(tasks) > 1)
            if parallel:
                executed, busy = self._run_pool(tasks, effective, registry)
            else:
                executed, busy = self._run_inline(tasks)

            for task_id, (query, positions) in enumerate(pending.values()):
                answers, stats = executed[task_id]
                self._cache.put(kind, params, query, answers, stats)
                for pos in positions:
                    results[pos] = (list(answers), stats.copy())

            wall = time.perf_counter() - start
            report = BatchReport(
                kind=kind, queries=n, dispatched=len(tasks),
                cache_hits=hits, workers=effective if parallel else 1,
                parallel=parallel, wall_seconds=wall, busy_seconds=busy,
            )
            self.last_batch = report
            self._publish_batch(registry, report)
            sp.set(dispatched=report.dispatched, cache_hits=hits,
                   wall_seconds=wall)
        return results

    def _run_inline(self, tasks):
        """Serial in-process execution (workers <= 1, no fork, or a
        single task)."""
        executed = {}
        busy = 0.0
        for task_id, kind, query, params, _ctx, _epoch in tasks:
            start = time.perf_counter()
            with trace.span("engine.task", task_id=task_id, kind=kind,
                            pid=os.getpid()):
                executed[task_id] = _execute(self._index, kind, query,
                                             params)
            busy += time.perf_counter() - start
        return executed, busy

    def _run_pool(self, tasks, workers, registry):
        """Fan tasks out to the persistent worker pool; merge each
        worker's metrics delta (and fold its shipped span records into
        the active trace) so totals and traces match a serial run."""
        pool = self._ensure_pool(workers)
        chunksize = max(1, len(tasks) // (workers * 4))
        depth = registry.gauge("engine.queue_depth")
        depth.set(len(tasks))
        ctx = tasks[0][4] if tasks else None
        executed = {}
        busy = 0.0
        try:
            for task_id, answers, stats, delta, task_busy, spans in \
                    pool.imap_unordered(_worker_run, tasks,
                                        chunksize=chunksize):
                executed[task_id] = (answers, stats)
                registry.merge(delta)
                trace.fold_worker_records(spans, ctx)
                busy += task_busy
                depth.dec()
        finally:
            depth.set(0)
        return executed, busy

    # ------------------------------------------------------------------
    # Worker pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self, workers: int):
        if self._pool is not None and self._pool_workers == workers:
            return self._pool
        self._close_pool()
        ctx = multiprocessing.get_context("fork")
        if isinstance(self._index, DiskCTree):
            initargs = (None, os.fspath(self._index.path),
                        self._cache_pages, self._epoch)
        else:
            # Under fork, initargs are inherited by reference — the tree
            # (and its memoized kernel contexts) is never pickled.
            initargs = (self._index, None, self._cache_pages, self._epoch)
        self._pool = ctx.Pool(processes=workers, initializer=_worker_init,
                              initargs=initargs)
        self._pool_workers = workers
        return self._pool

    def _close_pool(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
            self._pool_workers = 0

    @property
    def cache_entries(self) -> int:
        """Answers currently held by the answer cache (across buckets)."""
        return self._cache.entries

    # ------------------------------------------------------------------
    def _publish_batch(self, registry, report: BatchReport) -> None:
        registry.counter("engine.batches").inc()
        registry.counter("engine.queries").inc(report.queries)
        registry.counter("engine.cache_hits").inc(report.cache_hits)
        registry.counter("engine.cache_misses").inc(
            report.queries - report.cache_hits
        )
        registry.counter("engine.dispatched").inc(report.dispatched)
        registry.counter("engine.wall_seconds").inc(report.wall_seconds)
        registry.counter("engine.worker_busy_seconds").inc(
            report.busy_seconds
        )
        registry.gauge("engine.workers").set(report.workers)
        registry.gauge("engine.utilization").set(report.utilization)
        registry.gauge("engine.cache_hit_rate").set(report.cache_hit_rate)
        registry.histogram("engine.per_batch.wall_seconds").observe(
            report.wall_seconds
        )
        registry.histogram("engine.per_batch.queries").observe(
            report.queries
        )

    def __repr__(self) -> str:
        kind = "disk" if isinstance(self._index, DiskCTree) else "memory"
        return (f"<QueryEngine {kind} |D|={len(self._index)} "
                f"workers={self.workers} cached={self.cache_entries}>")
