"""C-tree construction by hierarchical clustering (Section 5.5).

Sequential insertion is order-sensitive and split-heavy; the paper instead
builds the tree bottom-up with a clustering pass per level.  The paper cites
generic hierarchical clustering [21]; this module implements a greedy
leader-based agglomerative scheme:

1. items (graphs, then nodes) are scanned in a shuffled order and greedily
   gathered around leaders by a cheap similarity (the Eqn. 7 upper bound,
   normalized — no graph mappings needed);
2. the leader groups define an ordering in which similar items are adjacent;
   the ordering is chunked into nodes whose fanouts always satisfy
   ``min_fanout <= fanout <= max_fanout``;
3. each node folds its closure with the tree's mapper, and the procedure
   recurses on the nodes until one root remains.

Construction therefore costs O(n * clusters) mapping-free comparisons plus
O(n) mapping-based closure folds per level — the behavior Fig. 6(b) reports.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, Optional, Sequence

from repro.graphs.graph import Graph
from repro.matching.bounds import norm, sim_upper_bound
from repro.ctree.node import Child, CTreeNode, LeafEntry
from repro.ctree.tree import CTree


def bulk_load(
    graphs: Iterable[Graph],
    min_fanout: int = 20,
    max_fanout: Optional[int] = None,
    mapping_method: str = "nbm",
    insert_policy: str = "min_volume",
    split_policy: str = "linear",
    seed: int = 0,
) -> CTree:
    """Build a C-tree over ``graphs`` by hierarchical clustering.

    Accepts the same configuration as :class:`~repro.ctree.tree.CTree`.
    Graph ids are assigned sequentially in input order.
    """
    tree = CTree(
        min_fanout=min_fanout,
        max_fanout=max_fanout,
        mapping_method=mapping_method,
        insert_policy=insert_policy,
        split_policy=split_policy,
        seed=seed,
    )
    rng = random.Random(seed)
    entries: list[Child] = []
    for i, graph in enumerate(graphs):
        tree._graphs[i] = graph
        tree._next_id = i + 1
        entries.append(LeafEntry(i, graph))

    if not entries:
        return tree

    level: list[Child] = entries
    is_leaf = True
    while True:
        if len(level) == 1 and not is_leaf:
            only = level[0]
            assert isinstance(only, CTreeNode)
            tree.root = only
            only.parent = None
            break
        if len(level) <= tree.max_fanout:
            tree.root = _make_node(tree, level, is_leaf)
            break
        order = _similarity_order(level, tree, rng)
        chunks = _chunk(order, tree.min_fanout, tree.max_fanout)
        level = [_make_node(tree, chunk, is_leaf) for chunk in chunks]
        is_leaf = False

    _index_leaves(tree)
    return tree


def _make_node(tree: CTree, children: Sequence[Child], is_leaf: bool) -> CTreeNode:
    node = CTreeNode(is_leaf=is_leaf)
    for child in children:
        node.add_child(child)
    node.rebuild_summary(tree.mapper)
    return node


def _index_leaves(tree: CTree) -> None:
    def walk(node: CTreeNode) -> None:
        if node.is_leaf:
            for child in node.children:
                assert isinstance(child, LeafEntry)
                tree._leaf_of[child.graph_id] = node
        else:
            for child in node.children:
                assert isinstance(child, CTreeNode)
                walk(child)

    walk(tree.root)


def _similarity_order(
    items: Sequence[Child], tree: CTree, rng: random.Random
) -> list[Child]:
    """Order items so that similar ones are adjacent, via greedy leader
    clustering on the normalized Eqn. 7 similarity bound."""
    target = (tree.min_fanout + tree.max_fanout) // 2
    order = list(range(len(items)))
    rng.shuffle(order)

    summaries = [CTreeNode.child_closure(item) for item in items]
    norms = [max(norm(s), 1.0) for s in summaries]

    leaders: list[int] = []
    groups: list[list[int]] = []
    for i in order:
        best_group, best_score = -1, -1.0
        for gi, leader in enumerate(leaders):
            if len(groups[gi]) >= target:
                continue
            score = sim_upper_bound(summaries[i], summaries[leader]) / max(
                norms[i], norms[leader]
            )
            if score > best_score:
                best_group, best_score = gi, score
        if best_group < 0 or best_score < 0.5:
            leaders.append(i)
            groups.append([i])
        else:
            groups[best_group].append(i)
    return [items[i] for group in groups for i in group]


def _chunk(
    ordered: Sequence[Child], min_size: int, max_size: int
) -> list[list[Child]]:
    """Cut an ordered sequence into consecutive chunks with sizes in
    ``[min_size, max_size]``.

    Feasible whenever ``len(ordered) >= min_size`` and
    ``max_size + 1 >= 2 * min_size`` (the C-tree configuration invariant).
    """
    n = len(ordered)
    lo = math.ceil(n / max_size)  # fewest pieces that respect the cap
    hi = max(1, n // min_size)    # most pieces that respect the floor
    pieces = max(lo, min(hi, round(n / ((min_size + max_size) / 2)) or 1))
    pieces = max(1, min(pieces, hi))
    base, extra = divmod(n, pieces)
    chunks: list[list[Child]] = []
    start = 0
    for i in range(pieces):
        size = base + (1 if i < extra else 0)
        chunks.append(list(ordered[start:start + size]))
        start += size
    return chunks
