"""Persistence and size accounting for C-trees.

The whole tree — structure, closures, histograms, and the database graphs at
the leaves — serializes to a single JSON document, so a C-tree can be built
once and reloaded for querying.  ``index_size_bytes`` measures the size of
that serialization; this is the quantity plotted in Fig. 6(a) (for
GraphGrep the analogous measure is its fingerprint table; see
:mod:`repro.graphgrep.index`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.exceptions import PersistenceError
from repro.graphs.closure import GraphClosure
from repro.graphs.graph import Graph
from repro.graphs.histogram import LabelHistogram
from repro.matching.pseudo_iso import (
    global_semi_perfect,
    pseudo_compatibility_domains,
)
from repro.ctree.node import CTreeNode, LeafEntry
from repro.ctree.tree import CTree

PathLike = Union[str, Path]

FORMAT_VERSION = 1


def tree_to_dict(tree: CTree) -> dict:
    """A JSON-serializable snapshot of the tree."""

    def node_to_dict(node: CTreeNode) -> dict:
        data: dict = {"leaf": node.is_leaf}
        if node.closure is not None:
            data["closure"] = node.closure.to_dict()
        if node.is_leaf:
            data["graph_ids"] = [
                child.graph_id
                for child in node.children
                if isinstance(child, LeafEntry)
            ]
        else:
            data["children"] = [
                node_to_dict(child)
                for child in node.children
                if isinstance(child, CTreeNode)
            ]
        return data

    return {
        "format": FORMAT_VERSION,
        "config": {
            "min_fanout": tree.min_fanout,
            "max_fanout": tree.max_fanout,
            "mapping_method": tree.mapping_method,
            "insert_policy": tree.insert_policy_name,
            "split_policy": tree.split_policy_name,
        },
        "graphs": {str(gid): g.to_dict() for gid, g in tree.graphs()},
        "root": node_to_dict(tree.root),
    }


def tree_from_dict(data: dict) -> CTree:
    """Rebuild a tree saved by :func:`tree_to_dict`."""
    try:
        if data.get("format") != FORMAT_VERSION:
            raise PersistenceError(
                f"unsupported C-tree format {data.get('format')!r}"
            )
        config = data["config"]
        tree = CTree(
            min_fanout=config["min_fanout"],
            max_fanout=config["max_fanout"],
            mapping_method=config["mapping_method"],
            insert_policy=config["insert_policy"],
            split_policy=config["split_policy"],
        )
        graphs = {
            int(gid): Graph.from_dict(gdata)
            for gid, gdata in data["graphs"].items()
        }
        tree._graphs = graphs
        tree._next_id = max(graphs, default=-1) + 1

        def build(node_data: dict) -> CTreeNode:
            node = CTreeNode(is_leaf=node_data["leaf"])
            if "closure" in node_data:
                node.closure = GraphClosure.from_dict(node_data["closure"])
                node.histogram = LabelHistogram.of(node.closure)
            if node.is_leaf:
                for gid in node_data.get("graph_ids", []):
                    entry = LeafEntry(gid, graphs[gid])
                    node.add_child(entry)
                    tree._leaf_of[gid] = node
            else:
                for child_data in node_data.get("children", []):
                    node.add_child(build(child_data))
            return node

        tree.root = build(data["root"])
        return tree
    except (KeyError, TypeError, ValueError) as exc:
        raise PersistenceError(f"malformed C-tree snapshot: {exc}") from exc


def validate_tree(tree: CTree, deep: bool = False) -> list[str]:
    """Check a C-tree's structural invariants; returns the violations
    (empty list = valid).

    Always checked: every leaf entry's graph id is unique and registered
    with the tree, every indexed graph is reachable from the root, every
    non-empty node carries a closure, and each parent closure's label
    histogram dominates its children's (the containment property queries
    prune on).  ``deep=True`` additionally requires each leaf graph to be
    level-1 pseudo-subgraph-isomorphic into its leaf closure (sound by
    Lemma 1).  Recovery and ``fsck`` run the same checks against the
    disk representation; this is the in-memory counterpart.
    """
    issues: list[str] = []
    seen: set[int] = set()

    def visit(node: CTreeNode, parent_hist) -> None:
        if node.closure is None and node.children:
            issues.append("non-empty node without a closure")
        hist = LabelHistogram.of(node.closure) \
            if node.closure is not None else None
        if parent_hist is not None and hist is not None \
                and not parent_hist.dominates(hist):
            issues.append("parent closure does not contain child closure")
        if node.is_leaf:
            for child in node.children:
                if not isinstance(child, LeafEntry):
                    issues.append("leaf node holds a non-leaf child")
                    continue
                gid = child.graph_id
                if gid in seen:
                    issues.append(f"graph id {gid} appears twice")
                seen.add(gid)
                if gid not in tree:
                    issues.append(f"graph id {gid} not registered")
                if hist is not None \
                        and not hist.dominates(LabelHistogram.of(child.graph)):
                    issues.append(
                        f"leaf closure does not dominate graph {gid}"
                    )
                    continue
                if deep and node.closure is not None:
                    domains = pseudo_compatibility_domains(
                        child.graph, node.closure, 1
                    )
                    if not global_semi_perfect(
                            domains, node.closure.num_vertices):
                        issues.append(
                            f"graph {gid} not pseudo-contained in its "
                            f"leaf closure"
                        )
        else:
            for child in node.children:
                if not isinstance(child, CTreeNode):
                    issues.append("inner node holds a leaf entry")
                    continue
                visit(child, hist)

    visit(tree.root, None)
    missing = set(tree.graph_ids()) - seen
    if missing:
        issues.append(
            f"{len(missing)} indexed graph(s) unreachable from the root "
            f"(e.g. id {min(missing)})"
        )
    return issues


def save_tree(tree: CTree, path: PathLike) -> int:
    """Write the tree to ``path``; returns the byte size written."""
    text = json.dumps(tree_to_dict(tree), separators=(",", ":"))
    with open(path, "w", encoding="utf-8") as f:
        f.write(text)
    return len(text.encode("utf-8"))


def load_tree(path: PathLike) -> CTree:
    with open(path, "r", encoding="utf-8") as f:
        try:
            data = json.load(f)
        except json.JSONDecodeError as exc:
            raise PersistenceError(f"{path}: not valid JSON: {exc}") from exc
    return tree_from_dict(data)


def index_size_bytes(tree: CTree, include_graphs: bool = True) -> int:
    """Size of the serialized index in bytes.

    ``include_graphs=False`` measures only the index overhead (closures +
    structure), which isolates the summaries' cost from the data itself.
    """
    data = tree_to_dict(tree)
    if not include_graphs:
        data = dict(data)
        data.pop("graphs")
    return len(json.dumps(data, separators=(",", ":")).encode("utf-8"))
