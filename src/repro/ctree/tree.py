"""The Closure-tree (Section 5).

A C-tree is a balanced tree in the R-tree family: leaves hold database
graphs, every node is summarized by the graph closure of its children, and
nodes have between ``min_fanout`` and ``max_fanout`` children (except the
root).  Insertion descends by a child-selection policy, enlarging closures
along the path; overflowing nodes split by a partitioning policy; deletion
shrinks closures and reinserts the entries of underflowing nodes.

All operations take polynomial time — the expensive primitive is the
heuristic graph mapping (NBM by default) used to union closures and to
measure closure distance during splits.
"""

from __future__ import annotations

import random
from typing import Iterator, Optional

from repro.exceptions import ConfigError, IndexError_
from repro.graphs.closure import GraphLike
from repro.graphs.graph import Graph
from repro.graphs.histogram import LabelHistogram
from repro.matching.edit_distance import MAPPING_METHODS
from repro.obs import trace
from repro.obs.metrics import global_registry
from repro.ctree.node import Child, CTreeNode, LeafEntry, Mapper
from repro.ctree.policies import (
    resolve_insert_policy,
    resolve_split_policy,
)

#: Paper default: m = 20, M = 2m - 1.
DEFAULT_MIN_FANOUT = 20

#: maintenance counters, resolved once at import time
_C_INSERTS = global_registry().counter("ctree.inserts")
_C_DELETES = global_registry().counter("ctree.deletes")
_C_SPLITS = global_registry().counter("ctree.splits")


class CTree:
    """A Closure-tree over a dynamic set of labeled graphs.

    Parameters
    ----------
    min_fanout, max_fanout:
        Node capacity bounds ``m`` and ``M``.  Defaults follow the paper:
        ``m = 20``, ``M = 2m - 1``.  ``(M + 1) // 2 >= m`` is required so
        that an even split never underflows.
    mapping_method:
        Heuristic mapping used for closure construction and closure
        distance: ``"nbm"`` (default) or ``"bipartite"``.
    insert_policy:
        ``"min_volume"`` (default), ``"min_overlap"``, or ``"random"``.
    split_policy:
        ``"linear"`` (default), ``"optimal"``, or ``"random"``.
    seed:
        Seed for the policies' internal randomness (pivot choice etc.).
    """

    def __init__(
        self,
        min_fanout: int = DEFAULT_MIN_FANOUT,
        max_fanout: Optional[int] = None,
        mapping_method: str = "nbm",
        insert_policy: str = "min_volume",
        split_policy: str = "linear",
        seed: int = 0,
    ) -> None:
        if min_fanout < 2:
            raise ConfigError(f"min_fanout must be >= 2, got {min_fanout}")
        if max_fanout is None:
            max_fanout = 2 * min_fanout - 1
        if (max_fanout + 1) // 2 < min_fanout:
            raise ConfigError(
                f"(max_fanout + 1) // 2 must be >= min_fanout "
                f"(got m={min_fanout}, M={max_fanout})"
            )
        if mapping_method not in MAPPING_METHODS:
            raise ConfigError(f"unknown mapping method {mapping_method!r}")
        self.min_fanout = min_fanout
        self.max_fanout = max_fanout
        self.mapping_method = mapping_method
        self.mapper: Mapper = MAPPING_METHODS[mapping_method]
        self._choose_child = resolve_insert_policy(insert_policy)
        self._partition = resolve_split_policy(split_policy)
        self.insert_policy_name = insert_policy
        self.split_policy_name = split_policy
        self._rng = random.Random(seed)
        self.root = CTreeNode(is_leaf=True)
        self._leaf_of: dict[int, CTreeNode] = {}
        self._graphs: dict[int, Graph] = {}
        self._next_id = 0

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._graphs)

    def __contains__(self, graph_id: int) -> bool:
        return graph_id in self._graphs

    def get(self, graph_id: int) -> Graph:
        try:
            return self._graphs[graph_id]
        except KeyError:
            raise IndexError_(f"no graph with id {graph_id}") from None

    def graph_ids(self) -> Iterator[int]:
        return iter(self._graphs)

    def graphs(self) -> Iterator[tuple[int, Graph]]:
        return iter(self._graphs.items())

    def height(self) -> int:
        return self.root.height()

    def node_count(self) -> int:
        return self.root.count_nodes()

    # ------------------------------------------------------------------
    # Insertion (Section 5.2)
    # ------------------------------------------------------------------
    def insert(self, graph: Graph, graph_id: Optional[int] = None) -> int:
        """Insert a graph; returns its database id."""
        if graph_id is None:
            graph_id = self._next_id
        if graph_id in self._graphs:
            raise IndexError_(f"graph id {graph_id} already present")
        self._next_id = max(self._next_id, graph_id + 1)
        self._graphs[graph_id] = graph

        with trace.span("ctree.insert", graph_id=graph_id):
            leaf = self._descend_and_extend(graph)
            entry = LeafEntry(graph_id, graph)
            leaf.add_child(entry)
            self._leaf_of[graph_id] = leaf
            self._handle_overflow(leaf)
        _C_INSERTS.value += 1
        return graph_id

    def _descend_and_extend(self, graph: GraphLike) -> CTreeNode:
        """Walk from the root to a leaf via the insert policy, enlarging
        every closure on the path to cover ``graph``."""
        node = self.root
        node.extend_summary(graph, self.mapper)
        while not node.is_leaf:
            index = self._choose_child(node, graph, self.mapper, self._rng)
            child = node.children[index]
            assert isinstance(child, CTreeNode)
            node = child
            node.extend_summary(graph, self.mapper)
        return node

    def _handle_overflow(self, node: CTreeNode) -> None:
        while node.fanout > self.max_fanout:
            sibling = self._split(node)
            parent = node.parent
            if parent is None:
                new_root = CTreeNode(is_leaf=False)
                new_root.add_child(node)
                new_root.add_child(sibling)
                new_root.rebuild_summary(self.mapper)
                self.root = new_root
                return
            parent.add_child(sibling)
            node = parent

    def _split(self, node: CTreeNode) -> CTreeNode:
        """Split ``node`` in place; returns the new sibling (Section 5.3)."""
        _C_SPLITS.value += 1
        with trace.span("ctree.split", fanout=node.fanout):
            return self._split_inner(node)

    def _split_inner(self, node: CTreeNode) -> CTreeNode:
        group1, group2 = self._partition(
            node.children, self.mapper, self._rng, self.min_fanout
        )
        if not group1 or not group2:
            raise IndexError_("split policy produced an empty group")
        children = node.children
        sibling = CTreeNode(is_leaf=node.is_leaf)
        keep = [children[i] for i in group1]
        move = [children[i] for i in group2]
        node.children = []
        for child in keep:
            node.add_child(child)
        for child in move:
            sibling.add_child(child)
            if isinstance(child, LeafEntry):
                self._leaf_of[child.graph_id] = sibling
        node.rebuild_summary(self.mapper)
        sibling.rebuild_summary(self.mapper)
        return sibling

    # ------------------------------------------------------------------
    # Deletion (Section 5.4)
    # ------------------------------------------------------------------
    def delete(self, graph_id: int) -> Graph:
        """Remove a graph by id; returns it.  Underflowing nodes are
        dissolved and their entries reinserted (non-leaf entries at their
        original height)."""
        with trace.span("ctree.delete", graph_id=graph_id):
            graph = self._delete_inner(graph_id)
        _C_DELETES.value += 1
        return graph

    def _delete_inner(self, graph_id: int) -> Graph:
        leaf = self._leaf_of.pop(graph_id, None)
        if leaf is None:
            raise IndexError_(f"no graph with id {graph_id}")
        graph = self._graphs.pop(graph_id)
        entry = next(
            c for c in leaf.children
            if isinstance(c, LeafEntry) and c.graph_id == graph_id
        )
        leaf.remove_child(entry)

        orphans: list[tuple[int, Child]] = []  # (height of child, child)
        node: Optional[CTreeNode] = leaf
        height = 0  # height of *node* (leaf = 0); its children sit below
        while (
            node is not None
            and node.parent is not None
            and node.fanout < self.min_fanout
        ):
            parent = node.parent
            parent.remove_child(node)
            for child in node.children:
                if isinstance(child, LeafEntry):
                    self._leaf_of.pop(child.graph_id, None)
                    orphans.append((-1, child))
                else:
                    orphans.append((height - 1, child))
            node = parent
            height += 1

        # Shrink closures from the surviving node up to the root.
        survivor = node if node is not None else self.root
        self._rebuild_upward(survivor)
        self._collapse_root()

        # Reinsert orphans, deepest first so heights remain consistent.
        for child_height, child in sorted(orphans, key=lambda t: t[0]):
            if isinstance(child, LeafEntry):
                leaf2 = self._descend_and_extend(child.graph)
                leaf2.add_child(child)
                self._leaf_of[child.graph_id] = leaf2
                self._handle_overflow(leaf2)
            else:
                self._reinsert_node(child, child_height)
        return graph

    def _rebuild_upward(self, node: Optional[CTreeNode]) -> None:
        while node is not None:
            node.rebuild_summary(self.mapper)
            node = node.parent

    def _collapse_root(self) -> None:
        while not self.root.is_leaf and self.root.fanout == 1:
            only = self.root.children[0]
            assert isinstance(only, CTreeNode)
            only.parent = None
            self.root = only
        if not self.root.is_leaf and self.root.fanout == 0:
            self.root = CTreeNode(is_leaf=True)

    def _reinsert_node(self, node: CTreeNode, height: int) -> None:
        """Reattach an orphaned subtree whose leaves must end up at the same
        depth as the tree's other leaves."""
        root_height = self.height()
        if root_height == height:
            # The tree shrank to the orphan's height: splice a new root.
            new_root = CTreeNode(is_leaf=False)
            new_root.add_child(self.root)
            new_root.add_child(node)
            new_root.rebuild_summary(self.mapper)
            self.root = new_root
            self._restore_leaf_index(node)
            return
        if root_height < height:
            # The tree shrank below the orphan: dissolve the orphan one
            # level and reinsert its children, keeping leaves level.
            for child in list(node.children):
                if isinstance(child, LeafEntry):
                    leaf = self._descend_and_extend(child.graph)
                    leaf.add_child(child)
                    self._leaf_of[child.graph_id] = leaf
                    self._handle_overflow(leaf)
                else:
                    self._reinsert_node(child, height - 1)
            return
        closure = node.closure
        assert closure is not None
        target = self.root
        target.extend_summary(closure, self.mapper)
        while target.height() > height + 1:
            index = self._choose_child(target, closure, self.mapper, self._rng)
            child = target.children[index]
            assert isinstance(child, CTreeNode)
            target = child
            target.extend_summary(closure, self.mapper)
        target.add_child(node)
        self._restore_leaf_index(node)
        self._handle_overflow(target)

    def _restore_leaf_index(self, node: CTreeNode) -> None:
        for entry in node.iter_leaf_entries():
            leaf = self._find_leaf_containing(node, entry)
            self._leaf_of[entry.graph_id] = leaf

    @staticmethod
    def _find_leaf_containing(node: CTreeNode, entry: LeafEntry) -> CTreeNode:
        if node.is_leaf:
            return node
        for child in node.children:
            if isinstance(child, CTreeNode):
                for e in child.iter_leaf_entries():
                    if e is entry:
                        return CTree._find_leaf_containing(child, entry)
        raise IndexError_("leaf entry vanished during reinsertion")

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, deep: bool = False) -> None:
        """Check all structural invariants; raises ``AssertionError`` on
        violation.

        The soundness invariant for query pruning is that every *database
        graph's* histogram is dominated by the histogram of each of its
        ancestors (a node's closure may legitimately count more label
        occurrences than its parent's, so parent-vs-child-closure dominance
        is *not* required).  ``deep=True`` additionally checks that every
        database graph is pseudo sub-isomorphic (at the convergence level)
        to every ancestor closure: a correctly built closure admits a real
        embedding of each member, which always passes this polynomial test,
        so a failure proves a broken closure.  (Exact Ullmann verification
        is intentionally avoided here — against large ε-rich closures its
        backtracking can blow up combinatorially.)
        """
        leaf_depths: set[int] = set()
        seen_ids: set[int] = set()

        def check(
            node: CTreeNode, depth: int, is_root: bool, ancestors: list[CTreeNode]
        ) -> None:
            if is_root:
                assert node.parent is None, "root has a parent"
                if not node.is_leaf:
                    assert node.fanout >= 2, "internal root needs >= 2 children"
            else:
                assert self.min_fanout <= node.fanout <= self.max_fanout, (
                    f"fanout {node.fanout} outside "
                    f"[{self.min_fanout}, {self.max_fanout}]"
                )
            if node.fanout and node.closure is None:
                raise AssertionError("non-empty node lacks a closure")
            lineage = ancestors + [node]
            if node.is_leaf:
                leaf_depths.add(depth)
                for child in node.children:
                    assert isinstance(child, LeafEntry), "leaf holds a node"
                    assert self._leaf_of.get(child.graph_id) is node, (
                        f"leaf index stale for graph {child.graph_id}"
                    )
                    seen_ids.add(child.graph_id)
                    self._check_graph_covered(child, lineage, deep)
            else:
                for child in node.children:
                    assert isinstance(child, CTreeNode), "inner node holds a graph"
                    assert child.parent is node, "broken parent pointer"
                    check(child, depth + 1, False, lineage)

        check(self.root, 0, True, [])
        assert len(leaf_depths) <= 1, f"leaves at multiple depths: {leaf_depths}"
        assert seen_ids == set(self._graphs), "leaf entries != graph catalog"

    def _check_graph_covered(
        self, entry: LeafEntry, lineage: list[CTreeNode], deep: bool
    ) -> None:
        graph_hist = LabelHistogram.of(entry.graph)
        for node in lineage:
            assert node.histogram is not None and node.closure is not None
            assert node.histogram.dominates(graph_hist), (
                f"ancestor histogram does not dominate graph {entry.graph_id}"
            )
            if deep:
                from repro.matching.pseudo_iso import pseudo_subgraph_isomorphic

                assert pseudo_subgraph_isomorphic(
                    entry.graph, node.closure, level="max"
                ), (
                    f"graph {entry.graph_id} fails pseudo sub-isomorphism "
                    f"against an ancestor closure"
                )

    def __repr__(self) -> str:
        return (
            f"<CTree |D|={len(self)} height={self.height()} "
            f"nodes={self.node_count()} m={self.min_fanout} M={self.max_fanout}>"
        )
