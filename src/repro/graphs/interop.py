"""Conversion between :class:`repro.graphs.graph.Graph` and networkx.

networkx is an *optional* dependency used for cross-validation in tests and
for users who want to feed existing networkx data into the index.  The core
library never imports this module.
"""

from __future__ import annotations

from typing import Any

from repro.exceptions import GraphError
from repro.graphs.graph import Graph


def to_networkx(graph: Graph) -> "Any":
    """Convert to a ``networkx.Graph`` with ``label`` node/edge attributes."""
    import networkx as nx

    g = nx.Graph()
    for v in graph.vertices():
        g.add_node(v, label=graph.label(v))
    for u, v, label in graph.edges():
        g.add_edge(u, v, label=label)
    return g


def from_networkx(nxg: "Any", label_attr: str = "label") -> Graph:
    """Convert from a ``networkx.Graph``.

    Node labels are read from ``label_attr`` (missing attribute raises
    :class:`GraphError`); edge labels from the same attribute, defaulting to
    ``None``.  Node ids may be arbitrary hashables; they are renumbered in
    sorted-by-repr order for determinism.
    """
    nodes = sorted(nxg.nodes, key=repr)
    index = {node: i for i, node in enumerate(nodes)}
    labels = []
    for node in nodes:
        attrs = nxg.nodes[node]
        if label_attr not in attrs:
            raise GraphError(f"node {node!r} is missing attribute {label_attr!r}")
        labels.append(attrs[label_attr])
    g = Graph(labels)
    for u, v, attrs in nxg.edges(data=True):
        g.add_edge(index[u], index[v], attrs.get(label_attr))
    return g
