"""Process-wide label interning and compiled bitset graph contexts.

The matching hot path (pseudo subgraph isomorphism, Alg. 2) spends most of
its time intersecting tiny ``frozenset`` labels and walking per-vertex
neighbor structures that are rebuilt for every (query, target) pair.  This
module compiles both away:

- :class:`LabelSpace` interns every distinct vertex/edge label to a small
  integer, so a label *set* becomes one Python int bitmask and the paper's
  label-compatibility test (:func:`~repro.graphs.closure.labels_match`)
  becomes two machine-word operations (:func:`masks_match`).
- :class:`TargetContext` is the compiled, immutable view of one
  :class:`~repro.graphs.graph.Graph` or
  :class:`~repro.graphs.closure.GraphClosure`: label bitmasks per vertex,
  neighbor tuples, adjacency bitmasks, per-vertex edge-label groups, and a
  dense int-array label histogram.  It is built once per object by
  :func:`target_context` and memoized on the graph itself (slot
  ``_kernel_ctx``), invalidated whenever the graph mutates.

Bit layout: bit 0 is reserved for the query wildcard and bit 1 for the
dummy label ε, so the wildcard test is a constant-mask AND.  Interning is
append-only — ids are never reassigned — which keeps cached masks valid as
new labels appear; a context is only stale if the *global space object*
itself was replaced (tests use :func:`reset_labelspace`).

ε is deliberately interned as an ordinary label bit: ``labels_match``
treats the dummy as a value two closures can agree on, and the bitmask
encoding must preserve that semantics exactly.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Union

from repro.graphs.closure import EPSILON, WILDCARD, GraphClosure, GraphLike
from repro.graphs.graph import Graph

__all__ = [
    "WILDCARD_BIT",
    "EPSILON_BIT",
    "LabelSpace",
    "TargetContext",
    "global_labelspace",
    "reset_labelspace",
    "masks_match",
    "target_context",
]

#: Bitmask of the reserved wildcard label (always id 0).
WILDCARD_BIT = 1
#: Bitmask of the reserved dummy label ε (always id 1).
EPSILON_BIT = 2


def masks_match(m1: int, m2: int) -> bool:
    """Bitmask equivalent of :func:`~repro.graphs.closure.labels_match`.

    True when the masks share a bit, or when either contains the wildcard
    bit (a wildcard matches any real label — and two wildcards share bit 0
    anyway, so the single constant-mask test covers every case).
    """
    return bool((m1 & m2) | ((m1 | m2) & WILDCARD_BIT))


class LabelSpace:
    """An append-only interner from labels to small integer ids.

    Vertex labels and edge labels are interned in separate namespaces so
    each side's bitmasks stay dense.  Ids 0 (wildcard) and 1 (ε) are
    reserved in both namespaces.
    """

    __slots__ = ("_vertex_ids", "_edge_ids")

    def __init__(self) -> None:
        self._vertex_ids: dict = {WILDCARD: 0, EPSILON: 1}
        self._edge_ids: dict = {WILDCARD: 0, EPSILON: 1}

    # ------------------------------------------------------------------
    def vertex_id(self, label: Hashable) -> int:
        ids = self._vertex_ids
        i = ids.get(label)
        if i is None:
            i = len(ids)
            ids[label] = i
        return i

    def edge_id(self, label: Hashable) -> int:
        ids = self._edge_ids
        i = ids.get(label)
        if i is None:
            i = len(ids)
            ids[label] = i
        return i

    def vertex_bit(self, label: Hashable) -> int:
        return 1 << self.vertex_id(label)

    def edge_bit(self, label: Hashable) -> int:
        return 1 << self.edge_id(label)

    def vertex_mask(self, labels: Iterable) -> int:
        m = 0
        for label in labels:
            m |= 1 << self.vertex_id(label)
        return m

    def edge_mask(self, labels: Iterable) -> int:
        m = 0
        for label in labels:
            m |= 1 << self.edge_id(label)
        return m

    # ------------------------------------------------------------------
    @property
    def num_vertex_labels(self) -> int:
        return len(self._vertex_ids)

    @property
    def num_edge_labels(self) -> int:
        return len(self._edge_ids)

    def snapshot(self) -> dict:
        """JSON-able summary (for ``repro metrics`` style introspection)."""
        return {
            "vertex_labels": len(self._vertex_ids),
            "edge_labels": len(self._edge_ids),
        }

    def __repr__(self) -> str:
        return (f"<LabelSpace |V-labels|={len(self._vertex_ids)} "
                f"|E-labels|={len(self._edge_ids)}>")


_GLOBAL_SPACE = LabelSpace()


def global_labelspace() -> LabelSpace:
    """The process-wide interner every compiled context is built against."""
    return _GLOBAL_SPACE


def reset_labelspace() -> LabelSpace:
    """Replace the global space with a fresh one (test isolation only).

    Contexts cached against the old space object are detected as stale by
    :func:`target_context` because the cache stores the space identity.
    """
    global _GLOBAL_SPACE
    _GLOBAL_SPACE = LabelSpace()
    return _GLOBAL_SPACE


class TargetContext:
    """The compiled bitset view of one graph or closure.

    Everything the matching kernels touch per vertex is a flat tuple/list
    indexed by vertex id; nothing here aliases the source graph's mutable
    structures.  Instances are immutable by convention and shared freely.
    """

    __slots__ = (
        "n",
        "vertex_masks",
        "neighbors",
        "adj_masks",
        "degrees",
        "edge_masks",
        "edge_groups",
        "vertex_groups",
        "vhist",
        "ehist",
        "vbits",
        "ebits",
    )

    def __init__(
        self,
        n: int,
        vertex_masks: list[int],
        neighbors: list[tuple[int, ...]],
        adj_masks: list[int],
        edge_masks: list[dict[int, int]],
        edge_groups: list[tuple[tuple[int, int], ...]],
        vertex_groups: tuple[tuple[int, int], ...],
        vhist: list[int],
        ehist: list[int],
    ) -> None:
        self.n = n
        self.vertex_masks = vertex_masks
        self.neighbors = neighbors
        self.adj_masks = adj_masks
        self.degrees = [len(nbrs) for nbrs in neighbors]
        self.edge_masks = edge_masks
        self.edge_groups = edge_groups
        self.vertex_groups = vertex_groups
        self.vhist = vhist
        self.ehist = ehist
        vbits = 0
        for i, c in enumerate(vhist):
            if c:
                vbits |= 1 << i
        ebits = 0
        for i, c in enumerate(ehist):
            if c:
                ebits |= 1 << i
        self.vbits = vbits
        self.ebits = ebits

    def hist_items(self) -> tuple[tuple[tuple[int, int], ...],
                                  tuple[tuple[int, int], ...]]:
        """Sparse ``(id, count)`` views of the two histogram arrays."""
        return (
            tuple((i, c) for i, c in enumerate(self.vhist) if c),
            tuple((i, c) for i, c in enumerate(self.ehist) if c),
        )

    def __repr__(self) -> str:
        return f"<TargetContext |V|={self.n}>"


def _build_graph_context(g: Graph, space: LabelSpace) -> TargetContext:
    vertex_bit = space.vertex_bit
    edge_bit = space.edge_bit
    n = g.num_vertices
    vertex_masks = [vertex_bit(g.label(v)) for v in range(n)]

    neighbors: list[tuple[int, ...]] = []
    adj_masks: list[int] = []
    edge_masks: list[dict[int, int]] = []
    edge_groups: list[tuple[tuple[int, int], ...]] = []
    for v in range(n):
        adj = g.adjacency(v)
        neighbors.append(tuple(adj))
        mask = 0
        row: dict[int, int] = {}
        groups: dict[int, int] = {}
        for w, label in adj.items():
            bit = 1 << w
            mask |= bit
            em = edge_bit(label)
            row[w] = em
            groups[em] = groups.get(em, 0) | bit
        adj_masks.append(mask)
        edge_masks.append(row)
        edge_groups.append(tuple(groups.items()))

    # Histograms mirror LabelHistogram.of(Graph): wildcard never counts.
    vhist = [0] * space.num_vertex_labels
    for v, m in enumerate(vertex_masks):
        if m != WILDCARD_BIT:
            vhist[m.bit_length() - 1] += 1
    ehist = [0] * space.num_edge_labels
    for _, _, label in g.edges():
        if label is not WILDCARD:
            ehist[space.edge_id(label)] += 1

    vgroups: dict[int, int] = {}
    for v, m in enumerate(vertex_masks):
        vgroups[m] = vgroups.get(m, 0) | (1 << v)

    return TargetContext(n, vertex_masks, neighbors, adj_masks, edge_masks,
                         edge_groups, tuple(vgroups.items()), vhist, ehist)


def _build_closure_context(c: GraphClosure, space: LabelSpace) -> TargetContext:
    n = c.num_vertices
    vertex_masks = [space.vertex_mask(c.label_set(v)) for v in range(n)]

    neighbors: list[tuple[int, ...]] = []
    adj_masks: list[int] = []
    edge_masks: list[dict[int, int]] = []
    edge_groups: list[tuple[tuple[int, int], ...]] = []
    for v in range(n):
        adj = c.adjacency(v)
        neighbors.append(tuple(adj))
        mask = 0
        row: dict[int, int] = {}
        groups: dict[int, int] = {}
        for w, label_set in adj.items():
            bit = 1 << w
            mask |= bit
            em = space.edge_mask(label_set)
            row[w] = em
            groups[em] = groups.get(em, 0) | bit
        adj_masks.append(mask)
        edge_masks.append(row)
        edge_groups.append(tuple(groups.items()))

    # Histograms mirror LabelHistogram.of(GraphClosure): ε and wildcard
    # are skipped, every other member of a label set counts once.
    vhist = [0] * space.num_vertex_labels
    for v in range(n):
        m = vertex_masks[v] & ~(WILDCARD_BIT | EPSILON_BIT)
        while m:
            b = m & -m
            m ^= b
            vhist[b.bit_length() - 1] += 1
    ehist = [0] * space.num_edge_labels
    for u in range(n):
        row = edge_masks[u]
        for w, em in row.items():
            if u < w:
                m = em & ~(WILDCARD_BIT | EPSILON_BIT)
                while m:
                    b = m & -m
                    m ^= b
                    ehist[b.bit_length() - 1] += 1

    vgroups: dict[int, int] = {}
    for v, m in enumerate(vertex_masks):
        vgroups[m] = vgroups.get(m, 0) | (1 << v)

    return TargetContext(n, vertex_masks, neighbors, adj_masks, edge_masks,
                         edge_groups, tuple(vgroups.items()), vhist, ehist)


def target_context(g: GraphLike) -> TargetContext:
    """The compiled context of ``g``, memoized on the object.

    The cache key is the identity of the global :class:`LabelSpace`;
    mutation of ``g`` clears the cache (see ``Graph``/``GraphClosure``
    mutators), and interning is append-only so a cached context never goes
    stale merely because other graphs introduced new labels.
    """
    space = _GLOBAL_SPACE
    try:
        cached = g._kernel_ctx
    except AttributeError:
        raise TypeError(
            f"cannot compile {type(g).__name__} to a context"
        ) from None
    if cached is not None and cached[0] is space:
        return cached[1]
    if isinstance(g, Graph):
        ctx = _build_graph_context(g, space)
    elif isinstance(g, GraphClosure):
        ctx = _build_closure_context(g, space)
    else:
        raise TypeError(f"cannot compile {type(g).__name__} to a context")
    g._kernel_ctx = (space, ctx)
    return ctx
