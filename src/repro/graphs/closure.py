"""Graph closures (Section 3 of the paper).

A *graph closure* is a generalized graph in which every vertex and every edge
carries a **set** of labels instead of a single label.  The closure of two
graphs under a mapping is their elementwise union: matched elements union
their attribute values, unmatched elements union with the dummy label
:data:`EPSILON`.  A closure acts as the structural analogue of a minimum
bounding rectangle: it "contains" every graph that participated in building
it.

:class:`GraphClosure` deliberately mirrors the accessor protocol of
:class:`~repro.graphs.graph.Graph` (``label_set``, ``edge_label_set``,
``neighbors``, ``num_vertices``...) so that the matching algorithms in
:mod:`repro.matching` work uniformly on graphs and closures.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Optional, Sequence, Union

from repro.exceptions import GraphError, MappingError
from repro.graphs.graph import Graph


class _Epsilon:
    """Singleton dummy label ε (Definition 2 / 7)."""

    _instance: Optional["_Epsilon"] = None

    def __new__(cls) -> "_Epsilon":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ε"

    def __reduce__(self):  # keeps pickling singleton-safe
        return (_Epsilon, ())


EPSILON = _Epsilon()


class _Wildcard:
    """Singleton wildcard label for queries with uncertain vertices.

    The paper's introduction motivates subgraph queries where "some parts
    are uncertain, e.g., vertices with wildcard labels".  A query vertex or
    edge labeled :data:`WILDCARD` is label-compatible with every real label
    (but still requires the element to exist — it never matches a dummy).
    Wildcards are a query-side concept: database graphs should not contain
    them.
    """

    _instance: Optional["_Wildcard"] = None

    def __new__(cls) -> "_Wildcard":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "*"

    def __reduce__(self):
        return (_Wildcard, ())


WILDCARD = _Wildcard()


def labels_match(s1: frozenset, s2: frozenset) -> bool:
    """Can two label sets agree on a value, honoring wildcards?

    True when the sets intersect, or when either side contains
    :data:`WILDCARD` (which matches any real label).  This is the
    compatibility test used by subgraph-isomorphism machinery
    (level-0 pseudo compatibility, Ullmann domains, edge checks).
    """
    if s1 & s2:
        return True
    return WILDCARD in s1 or WILDCARD in s2


def contains_wildcard(g: "GraphLike") -> bool:
    """True if any vertex or edge of ``g`` carries the wildcard label."""
    for v in g.vertices():
        if WILDCARD in g.label_set(v):
            return True
    if isinstance(g, GraphClosure):
        return any(WILDCARD in s for _, _, s in g.edges())
    return any(label is WILDCARD for _, _, label in g.edges())


#: JSON marker for the dummy label.
_EPSILON_JSON = "__epsilon__"
#: JSON marker for the wildcard label.
_WILDCARD_JSON = "__wildcard__"

GraphLike = Union[Graph, "GraphClosure"]


class GraphClosure:
    """A generalized graph whose vertices and edges carry label *sets*.

    Vertices are integer ids ``0..n-1``; each has a non-empty ``frozenset``
    of labels (possibly including :data:`EPSILON`).  Edges likewise carry
    ``frozenset`` labels.
    """

    __slots__ = ("_vlabels", "_adj", "_num_edges", "_kernel_ctx")

    def __init__(self, vertex_label_sets: Sequence[Iterable] = ()) -> None:
        self._vlabels: list[frozenset] = [frozenset(s) for s in vertex_label_sets]
        for s in self._vlabels:
            if not s:
                raise GraphError("vertex label sets must be non-empty")
        self._adj: list[dict[int, frozenset]] = [{} for _ in self._vlabels]
        self._num_edges = 0
        #: memoized (labelspace, TargetContext) — see repro.graphs.labelspace
        self._kernel_ctx = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: Graph) -> "GraphClosure":
        """The singleton closure of one graph (every label set has size 1)."""
        c = cls([graph.label_set(v) for v in graph.vertices()])
        for u, v, label in graph.edges():
            c.add_edge(u, v, frozenset((label,)))
        return c

    def add_vertex(self, label_set: Iterable) -> int:
        s = frozenset(label_set)
        if not s:
            raise GraphError("vertex label sets must be non-empty")
        self._vlabels.append(s)
        self._adj.append({})
        self._kernel_ctx = None
        return len(self._vlabels) - 1

    def add_edge(self, u: int, v: int, label_set: Iterable) -> None:
        s = frozenset(label_set)
        if not s:
            raise GraphError("edge label sets must be non-empty")
        if not (0 <= u < len(self._vlabels) and 0 <= v < len(self._vlabels)):
            raise GraphError(f"edge ({u}, {v}) out of range")
        if u == v:
            raise GraphError("self-loops not supported")
        if v in self._adj[u]:
            raise GraphError(f"duplicate edge ({u}, {v})")
        self._adj[u][v] = s
        self._adj[v][u] = s
        self._num_edges += 1
        self._kernel_ctx = None

    # ------------------------------------------------------------------
    # Shared Graph protocol
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._vlabels)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def vertices(self) -> range:
        return range(len(self._vlabels))

    def label_set(self, v: int) -> frozenset:
        return self._vlabels[v]

    def neighbors(self, v: int) -> Iterable[int]:
        return self._adj[v].keys()

    def degree(self, v: int) -> int:
        return len(self._adj[v])

    def max_degree(self) -> int:
        if not self._adj:
            return 0
        return max(len(nbrs) for nbrs in self._adj)

    def has_edge(self, u: int, v: int) -> bool:
        return 0 <= u < len(self._adj) and v in self._adj[u]

    def edge_label_set(self, u: int, v: int) -> frozenset:
        try:
            return self._adj[u][v]
        except (KeyError, IndexError) as exc:
            raise GraphError(f"no edge ({u}, {v})") from exc

    def edges(self) -> Iterator[tuple[int, int, frozenset]]:
        for u, nbrs in enumerate(self._adj):
            for v, s in nbrs.items():
                if u < v:
                    yield (u, v, s)

    def adjacency(self, v: int) -> dict[int, frozenset]:
        return self._adj[v]

    # ------------------------------------------------------------------
    # Closure-specific queries
    # ------------------------------------------------------------------
    def vertex_is_optional(self, v: int) -> bool:
        """True if the vertex may be absent in a member graph (ε in set)."""
        return EPSILON in self._vlabels[v]

    def edge_is_optional(self, u: int, v: int) -> bool:
        return EPSILON in self.edge_label_set(u, v)

    def min_num_vertices(self) -> int:
        """Lower bound on the vertex count of any member graph."""
        return sum(1 for s in self._vlabels if EPSILON not in s)

    def min_num_edges(self) -> int:
        """Lower bound on the edge count of any member graph."""
        return sum(1 for _, _, s in self.edges() if EPSILON not in s)

    def log_volume(self) -> float:
        """Natural log of the closure volume (Definition 10).

        The raw volume (product of label-set sizes) overflows for any
        realistic closure, so the library works with its logarithm, which is
        order-isomorphic and is all the insertion policies need.
        """
        total = 0.0
        for s in self._vlabels:
            total += math.log(len(s))
        for _, _, s in self.edges():
            total += math.log(len(s))
        return total

    # ------------------------------------------------------------------
    # Equality / repr
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GraphClosure):
            return NotImplemented
        return self._vlabels == other._vlabels and self._adj == other._adj

    def __hash__(self) -> int:
        return hash((tuple(self._vlabels),
                     tuple(sorted((u, v) for u, v, _ in self.edges()))))

    def __repr__(self) -> str:
        return f"<GraphClosure |V|={self.num_vertices} |E|={self.num_edges}>"

    def copy(self) -> "GraphClosure":
        c = GraphClosure.__new__(GraphClosure)
        c._vlabels = list(self._vlabels)
        c._adj = [dict(nbrs) for nbrs in self._adj]
        c._num_edges = self._num_edges
        c._kernel_ctx = None
        return c

    # ------------------------------------------------------------------
    # Pickling (never serialize the process-local kernel context cache)
    # ------------------------------------------------------------------
    def __getstate__(self):
        return (self._vlabels, self._adj, self._num_edges)

    def __setstate__(self, state) -> None:
        self._vlabels, self._adj, self._num_edges = state
        self._kernel_ctx = None

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    @staticmethod
    def _set_to_json(s: frozenset) -> list:
        def encode(x):
            if x is EPSILON:
                return _EPSILON_JSON
            if x is WILDCARD:
                return _WILDCARD_JSON
            return x

        return sorted((encode(x) for x in s), key=repr)

    @staticmethod
    def _set_from_json(items: list) -> frozenset:
        def decode(x):
            if x == _EPSILON_JSON:
                return EPSILON
            if x == _WILDCARD_JSON:
                return WILDCARD
            return x

        return frozenset(decode(x) for x in items)

    def to_dict(self) -> dict:
        return {
            "vertex_label_sets": [self._set_to_json(s) for s in self._vlabels],
            "edges": [[u, v, self._set_to_json(s)] for u, v, s in self.edges()],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GraphClosure":
        c = cls([cls._set_from_json(s) for s in data["vertex_label_sets"]])
        for u, v, s in data["edges"]:
            c.add_edge(u, v, cls._set_from_json(s))
        return c


def as_closure(g: GraphLike) -> GraphClosure:
    """View any graph-like object as a :class:`GraphClosure`."""
    if isinstance(g, GraphClosure):
        return g
    if isinstance(g, Graph):
        return GraphClosure.from_graph(g)
    raise GraphError(f"cannot interpret {type(g).__name__} as a closure")


def closure_under_mapping(
    g1: GraphLike,
    g2: GraphLike,
    mapping: Sequence[tuple[Optional[int], Optional[int]]],
) -> GraphClosure:
    """The closure of ``g1`` and ``g2`` under a mapping (Definition 8).

    ``mapping`` is a sequence of pairs ``(u, v)`` where ``u`` is a vertex of
    ``g1`` or ``None`` (dummy) and ``v`` is a vertex of ``g2`` or ``None``.
    Every vertex of both graphs must appear exactly once, and no pair may be
    dummy on both sides (Definition 2).

    Matched vertices/edges union their label sets; unmatched ones union with
    :data:`EPSILON`.
    """
    c1 = as_closure(g1)
    c2 = as_closure(g2)
    _validate_mapping(c1, c2, mapping)

    eps = frozenset((EPSILON,))
    result = GraphClosure.__new__(GraphClosure)
    result._vlabels = []
    result._adj = []
    result._num_edges = 0
    result._kernel_ctx = None

    # Vertex closures, one per mapping pair; remember each pair's new id.
    pair_id: list[int] = []
    for u, v in mapping:
        if u is None:
            label = c2.label_set(v) | eps
        elif v is None:
            label = c1.label_set(u) | eps
        else:
            label = c1.label_set(u) | c2.label_set(v)
        result._vlabels.append(label)
        result._adj.append({})
        pair_id.append(len(result._vlabels) - 1)

    # Edge closures: for every pair of mapping pairs, union corresponding
    # edges from each side.  Iterate each side's edge list once instead of
    # all O(n^2) pairs.
    id_of_u = {u: pair_id[i] for i, (u, _) in enumerate(mapping) if u is not None}
    id_of_v = {v: pair_id[i] for i, (_, v) in enumerate(mapping) if v is not None}

    edge_sets: dict[tuple[int, int], list] = {}
    for a, b, s in c1.edges():
        key = _ordered(id_of_u[a], id_of_u[b])
        edge_sets[key] = [s, None]
    for a, b, s in c2.edges():
        key = _ordered(id_of_v[a], id_of_v[b])
        if key in edge_sets:
            edge_sets[key][1] = s
        else:
            edge_sets[key] = [None, s]

    for (x, y), (s1, s2) in edge_sets.items():
        if s1 is None:
            label = s2 | eps
        elif s2 is None:
            label = s1 | eps
        else:
            label = s1 | s2
        result.add_edge(x, y, label)
    return result


def _ordered(a: int, b: int) -> tuple[int, int]:
    return (a, b) if a < b else (b, a)


def _validate_mapping(
    c1: GraphClosure,
    c2: GraphClosure,
    mapping: Sequence[tuple[Optional[int], Optional[int]]],
) -> None:
    seen1: set[int] = set()
    seen2: set[int] = set()
    for u, v in mapping:
        if u is None and v is None:
            raise MappingError("mapping pair is dummy on both sides")
        if u is not None:
            if not 0 <= u < c1.num_vertices:
                raise MappingError(f"vertex {u} out of range in first graph")
            if u in seen1:
                raise MappingError(f"vertex {u} mapped twice in first graph")
            seen1.add(u)
        if v is not None:
            if not 0 <= v < c2.num_vertices:
                raise MappingError(f"vertex {v} out of range in second graph")
            if v in seen2:
                raise MappingError(f"vertex {v} mapped twice in second graph")
            seen2.add(v)
    if len(seen1) != c1.num_vertices:
        raise MappingError("mapping does not cover all vertices of first graph")
    if len(seen2) != c2.num_vertices:
        raise MappingError("mapping does not cover all vertices of second graph")
