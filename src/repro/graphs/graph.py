"""Labeled undirected graphs.

:class:`Graph` is the fundamental data object of the library: a vertex- and
edge-labeled undirected graph with contiguous integer vertex ids.  It mirrors
the data model of the Closure-tree paper (Section 2): vertices carry a single
label as their attribute; edges carry an optional label (the paper's chemical
graphs use "unspecified but identical" edge labels, which we model as
``None``).

The representation is adjacency dictionaries (one ``dict[int, label]`` per
vertex), which makes the inner loops of Ullmann's algorithm and pseudo
subgraph isomorphism as cheap as pure Python allows.
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable, Iterable, Iterator, Optional, Sequence

from repro.exceptions import GraphError

Label = Hashable


class Graph:
    """A labeled undirected graph with integer vertex ids ``0..n-1``.

    Parameters
    ----------
    vertex_labels:
        Labels for the initial vertices, in id order.
    edges:
        Iterable of ``(u, v)`` or ``(u, v, label)`` tuples.

    Examples
    --------
    >>> g = Graph(["C", "C", "O"], [(0, 1), (1, 2)])
    >>> g.num_vertices, g.num_edges
    (3, 2)
    >>> sorted(g.neighbors(1))
    [0, 2]
    """

    __slots__ = ("_labels", "_adj", "_num_edges", "name", "_kernel_ctx",
                 "_signature")

    def __init__(
        self,
        vertex_labels: Sequence[Label] = (),
        edges: Iterable[tuple] = (),
        name: Optional[str] = None,
    ) -> None:
        self._labels: list[Label] = list(vertex_labels)
        self._adj: list[dict[int, Label]] = [{} for _ in self._labels]
        self._num_edges = 0
        self.name = name
        #: memoized (labelspace, TargetContext) — see repro.graphs.labelspace
        self._kernel_ctx = None
        #: memoized signature() tuple; every mutator clears it
        self._signature = None
        for edge in edges:
            if len(edge) == 2:
                u, v = edge
                self.add_edge(u, v)
            else:
                u, v, label = edge
                self.add_edge(u, v, label)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_vertex(self, label: Label) -> int:
        """Append a vertex with the given label and return its id."""
        self._labels.append(label)
        self._adj.append({})
        self._kernel_ctx = None
        self._signature = None
        return len(self._labels) - 1

    def add_edge(self, u: int, v: int, label: Label = None) -> None:
        """Add an undirected edge between ``u`` and ``v``.

        Raises :class:`GraphError` on self-loops, duplicate edges, or
        out-of-range endpoints.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise GraphError(f"self-loop on vertex {u} not supported")
        if v in self._adj[u]:
            raise GraphError(f"duplicate edge ({u}, {v})")
        self._adj[u][v] = label
        self._adj[v][u] = label
        self._num_edges += 1
        self._kernel_ctx = None
        self._signature = None

    def remove_edge(self, u: int, v: int) -> None:
        """Remove the edge between ``u`` and ``v`` (must exist)."""
        self._check_vertex(u)
        self._check_vertex(v)
        if v not in self._adj[u]:
            raise GraphError(f"no edge ({u}, {v}) to remove")
        del self._adj[u][v]
        del self._adj[v][u]
        self._num_edges -= 1
        self._kernel_ctx = None
        self._signature = None

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < len(self._labels):
            raise GraphError(f"vertex {v} out of range [0, {len(self._labels)})")

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def vertices(self) -> range:
        """All vertex ids."""
        return range(len(self._labels))

    def label(self, v: int) -> Label:
        """The label of vertex ``v``."""
        return self._labels[v]

    def set_label(self, v: int, label: Label) -> None:
        self._check_vertex(v)
        self._labels[v] = label
        self._kernel_ctx = None
        self._signature = None

    def label_set(self, v: int) -> frozenset:
        """The label of ``v`` viewed as a singleton set.

        This is the shared protocol between :class:`Graph` and
        :class:`~repro.graphs.closure.GraphClosure`: matching code that
        accepts either calls ``label_set`` and intersects.
        """
        return frozenset((self._labels[v],))

    def neighbors(self, v: int) -> Iterable[int]:
        """Neighbor ids of ``v``."""
        return self._adj[v].keys()

    def degree(self, v: int) -> int:
        return len(self._adj[v])

    def max_degree(self) -> int:
        """The maximum vertex degree (0 for an empty graph)."""
        if not self._adj:
            return 0
        return max(len(nbrs) for nbrs in self._adj)

    def has_edge(self, u: int, v: int) -> bool:
        return 0 <= u < len(self._adj) and v in self._adj[u]

    def edge_label(self, u: int, v: int) -> Label:
        """The label of edge ``(u, v)`` (must exist)."""
        try:
            return self._adj[u][v]
        except (KeyError, IndexError) as exc:
            raise GraphError(f"no edge ({u}, {v})") from exc

    def edge_label_set(self, u: int, v: int) -> frozenset:
        """Edge label viewed as a singleton set (closure protocol)."""
        return frozenset((self.edge_label(u, v),))

    def edges(self) -> Iterator[tuple[int, int, Label]]:
        """Iterate over edges once each, as ``(u, v, label)`` with ``u < v``."""
        for u, nbrs in enumerate(self._adj):
            for v, label in nbrs.items():
                if u < v:
                    yield (u, v, label)

    def adjacency(self, v: int) -> dict[int, Label]:
        """The (read-only by convention) adjacency dict of ``v``."""
        return self._adj[v]

    # ------------------------------------------------------------------
    # Label statistics
    # ------------------------------------------------------------------
    def vertex_label_counts(self) -> Counter:
        """Multiset of vertex labels."""
        return Counter(self._labels)

    def edge_label_counts(self) -> Counter:
        """Multiset of edge labels."""
        return Counter(label for _, _, label in self.edges())

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        g = Graph.__new__(Graph)
        g._labels = list(self._labels)
        g._adj = [dict(nbrs) for nbrs in self._adj]
        g._num_edges = self._num_edges
        g.name = self.name
        g._kernel_ctx = None
        # The signature is a structural invariant and copies share
        # structure, so the memoized tuple carries over.
        g._signature = self._signature
        return g

    def subgraph(self, vertices: Sequence[int]) -> "Graph":
        """The vertex-induced subgraph on ``vertices``.

        Vertices are renumbered ``0..k-1`` in the order given.
        """
        index = {v: i for i, v in enumerate(vertices)}
        if len(index) != len(vertices):
            raise GraphError("duplicate vertices in subgraph selection")
        sub = Graph([self._labels[v] for v in vertices])
        for v in vertices:
            for w, label in self._adj[v].items():
                if w in index and v < w:
                    sub.add_edge(index[v], index[w], label)
        return sub

    def relabeled(self, permutation: Sequence[int]) -> "Graph":
        """A copy with vertex ``i`` renamed to ``permutation[i]``.

        ``permutation`` must be a permutation of ``0..n-1``.  Useful for
        isomorphism tests.
        """
        n = self.num_vertices
        if sorted(permutation) != list(range(n)):
            raise GraphError("relabeled() requires a permutation of all vertices")
        g = Graph([None] * n)
        for v in self.vertices():
            g._labels[permutation[v]] = self._labels[v]
        for u, v, label in self.edges():
            g.add_edge(permutation[u], permutation[v], label)
        g.name = self.name
        return g

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """True iff the graph is connected (the empty graph is connected)."""
        n = self.num_vertices
        if n <= 1:
            return True
        seen = [False] * n
        stack = [0]
        seen[0] = True
        count = 1
        while stack:
            v = stack.pop()
            for w in self._adj[v]:
                if not seen[w]:
                    seen[w] = True
                    count += 1
                    stack.append(w)
        return count == n

    def connected_components(self) -> list[list[int]]:
        """Vertex id lists of the connected components."""
        n = self.num_vertices
        seen = [False] * n
        components = []
        for start in range(n):
            if seen[start]:
                continue
            seen[start] = True
            component = [start]
            stack = [start]
            while stack:
                v = stack.pop()
                for w in self._adj[v]:
                    if not seen[w]:
                        seen[w] = True
                        component.append(w)
                        stack.append(w)
            components.append(component)
        return components

    def bfs_levels(self, start: int, max_level: Optional[int] = None) -> dict[int, int]:
        """BFS distance of every vertex reachable from ``start``.

        If ``max_level`` is given, exploration stops at that distance.
        """
        self._check_vertex(start)
        levels = {start: 0}
        frontier = [start]
        level = 0
        while frontier and (max_level is None or level < max_level):
            level += 1
            next_frontier = []
            for v in frontier:
                for w in self._adj[v]:
                    if w not in levels:
                        levels[w] = level
                        next_frontier.append(w)
            frontier = next_frontier
        return levels

    # ------------------------------------------------------------------
    # Equality / hashing helpers
    # ------------------------------------------------------------------
    def structure_equal(self, other: "Graph") -> bool:
        """Exact equality of labels and adjacency (identity mapping).

        This is *not* isomorphism: vertex ids must line up.
        """
        return (
            isinstance(other, Graph)
            and self._labels == other._labels
            and self._adj == other._adj
        )

    def signature(self) -> tuple:
        """A cheap isomorphism-*invariant* (not complete) fingerprint.

        Two isomorphic graphs always have equal signatures; unequal
        signatures prove non-isomorphism.  Used for fast dataset dedup
        and as the query-cache key of the batched query engine.  The
        tuple is memoized on the instance (mutators invalidate it), so
        repeated lookups cost one attribute read.
        """
        if self._signature is not None:
            return self._signature
        vertex_part = tuple(sorted(map(repr, self._labels)))
        degree_part = tuple(sorted(len(nbrs) for nbrs in self._adj))
        edge_part = tuple(
            sorted(
                (min(repr(self._labels[u]), repr(self._labels[v])),
                 max(repr(self._labels[u]), repr(self._labels[v])),
                 repr(label))
                for u, v, label in self.edges()
            )
        )
        self._signature = (vertex_part, degree_part, edge_part)
        return self._signature

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self.structure_equal(other)

    def __hash__(self) -> int:  # structural; graphs are conceptually immutable once built
        return hash((tuple(map(repr, self._labels)),
                     tuple(sorted((u, v, repr(label)) for u, v, label in self.edges()))))

    def __repr__(self) -> str:
        name = f" {self.name!r}" if self.name else ""
        return f"<Graph{name} |V|={self.num_vertices} |E|={self.num_edges}>"

    # ------------------------------------------------------------------
    # Pickling (the kernel context cache holds bitmasks tied to this
    # process's label interner, so it must never be serialized)
    # ------------------------------------------------------------------
    def __getstate__(self):
        return (self._labels, self._adj, self._num_edges, self.name)

    def __setstate__(self, state) -> None:
        self._labels, self._adj, self._num_edges, self.name = state
        self._kernel_ctx = None
        self._signature = None

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-serializable description of the graph.

        The query wildcard label serializes as the marker string
        ``"__wildcard__"``.
        """
        from repro.graphs.closure import WILDCARD

        def encode(label):
            return "__wildcard__" if label is WILDCARD else label

        data = {
            "labels": [encode(label) for label in self._labels],
            "edges": [
                [u, v] if label is None else [u, v, encode(label)]
                for u, v, label in self.edges()
            ],
        }
        if self.name is not None:
            data["name"] = self.name
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Graph":
        from repro.graphs.closure import WILDCARD

        def decode(label):
            return WILDCARD if label == "__wildcard__" else label

        g = cls([decode(label) for label in data["labels"]],
                name=data.get("name"))
        for edge in data["edges"]:
            if len(edge) == 2:
                g.add_edge(edge[0], edge[1])
            else:
                g.add_edge(edge[0], edge[1], decode(edge[2]))
        return g
