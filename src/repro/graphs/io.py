"""Serialization of graphs and graph databases.

The on-disk database format is JSON Lines: one graph per line, in the format
produced by :meth:`repro.graphs.graph.Graph.to_dict`.  The format is
deliberately boring — the index structures have their own persistence in
:mod:`repro.ctree.persistence`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Union

from repro.exceptions import PersistenceError
from repro.graphs.graph import Graph

PathLike = Union[str, Path]


def save_graph_database(graphs: Iterable[Graph], path: PathLike) -> int:
    """Write graphs to ``path`` as JSON lines.  Returns the count written."""
    count = 0
    with open(path, "w", encoding="utf-8") as f:
        for g in graphs:
            f.write(json.dumps(g.to_dict(), separators=(",", ":")))
            f.write("\n")
            count += 1
    return count


def load_graph_database(path: PathLike) -> list[Graph]:
    """Load a JSON-lines graph database written by
    :func:`save_graph_database`."""
    graphs: list[Graph] = []
    with open(path, "r", encoding="utf-8") as f:
        for line_no, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                graphs.append(Graph.from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                raise PersistenceError(
                    f"{path}:{line_no}: malformed graph record: {exc}"
                ) from exc
    return graphs


def graph_to_json(graph: Graph) -> str:
    """Serialize a single graph to a JSON string."""
    return json.dumps(graph.to_dict(), separators=(",", ":"))


def graph_from_json(text: str) -> Graph:
    """Parse a graph from a JSON string."""
    try:
        return Graph.from_dict(json.loads(text))
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        raise PersistenceError(f"malformed graph JSON: {exc}") from exc


def database_size_bytes(graphs: Iterable[Graph]) -> int:
    """Serialized size of a database in bytes (used as the "data size"
    reference point when reporting index sizes)."""
    return sum(len(graph_to_json(g)) + 1 for g in graphs)


def format_graph(graph: Graph) -> str:
    """A human-readable multi-line rendering of a graph (for debugging and
    CLI output)::

        graph "ethanol" |V|=3 |E|=2
          v0: C
          v1: C
          v2: O
          e: 0-1, 1-2
    """
    name = f' "{graph.name}"' if graph.name else ""
    lines = [f"graph{name} |V|={graph.num_vertices} |E|={graph.num_edges}"]
    for v in graph.vertices():
        lines.append(f"  v{v}: {graph.label(v)!r}")
    edge_bits = []
    for u, v, label in graph.edges():
        if label is None:
            edge_bits.append(f"{u}-{v}")
        else:
            edge_bits.append(f"{u}-{v}({label!r})")
    if edge_bits:
        lines.append("  e: " + ", ".join(edge_bits))
    return "\n".join(lines)
