"""Label histograms for lightweight pruning (Section 6.2).

The histogram of a graph counts the occurrences of each distinct vertex and
edge label.  If a query ``Q`` is subgraph-isomorphic to a graph ``G`` then
``F_Q[i] <= F_G[i]`` for every label ``i``; the C-tree tests this cheap
necessary condition before running pseudo subgraph isomorphism on a node.

For a :class:`~repro.graphs.closure.GraphClosure` the histogram counts, for
each label, the number of vertices/edges whose label *set* contains it.  That
value upper-bounds the count of any member graph, so dominance remains a
sound filter at internal nodes.
"""

from __future__ import annotations

from collections import Counter
from typing import Union

from repro.graphs.closure import EPSILON, WILDCARD, GraphClosure
from repro.graphs.graph import Graph

_VERTEX = 0
_EDGE = 1


class LabelHistogram:
    """Counting vector over vertex labels and edge labels.

    Keys are ``(kind, label)`` with ``kind`` 0 for vertices and 1 for edges;
    the dummy label ε and the query wildcard never appear (neither is a real
    attribute value; a wildcard element matches anything, so it imposes no
    per-label requirement on the target).
    """

    __slots__ = ("_counts",)

    def __init__(self, counts: Counter | None = None) -> None:
        self._counts: Counter = counts if counts is not None else Counter()

    @classmethod
    def of(cls, g: Union[Graph, GraphClosure]) -> "LabelHistogram":
        """Histogram of a graph or a graph closure."""
        counts: Counter = Counter()
        if isinstance(g, Graph):
            for v in g.vertices():
                label = g.label(v)
                if label is not WILDCARD:
                    counts[(_VERTEX, label)] += 1
            for _, _, label in g.edges():
                if label is not WILDCARD:
                    counts[(_EDGE, label)] += 1
        elif isinstance(g, GraphClosure):
            for v in g.vertices():
                for label in g.label_set(v):
                    if label is not EPSILON and label is not WILDCARD:
                        counts[(_VERTEX, label)] += 1
            for _, _, label_set in g.edges():
                for label in label_set:
                    if label is not EPSILON and label is not WILDCARD:
                        counts[(_EDGE, label)] += 1
        else:
            raise TypeError(f"cannot build histogram of {type(g).__name__}")
        return cls(counts)

    def dominates(self, query: "LabelHistogram") -> bool:
        """True iff ``self[i] >= query[i]`` for every label ``i``.

        A ``False`` result proves the query cannot be subgraph-isomorphic to
        any graph summarized by ``self``.
        """
        mine = self._counts
        for key, count in query._counts.items():
            if mine.get(key, 0) < count:
                return False
        return True

    def attains(self, outer: "LabelHistogram") -> bool:
        """True iff some count of ``self`` reaches the matching count in
        ``outer`` (``self[i] >= outer[i] > 0`` for at least one label).

        When ``outer`` dominates ``self`` (an ancestor closure over a
        member graph), this detects whether the member is *load-bearing*
        for any label bound: removing a graph that attains no bound
        cannot lower any count of a recomputed closure histogram, so the
        disk delete path skips the recomputation entirely.
        """
        mine = self._counts
        for key, count in mine.items():
            if count >= outer._counts.get(key, 0):
                return True
        return False

    def merged(self, other: "LabelHistogram") -> "LabelHistogram":
        """Pointwise-max merge: the histogram of a parent closure must
        dominate both children, and the pointwise max is the tightest such
        vector computable without re-deriving the closure."""
        counts = Counter(self._counts)
        for key, count in other._counts.items():
            if counts.get(key, 0) < count:
                counts[key] = count
        return LabelHistogram(counts)

    def added(self, other: "LabelHistogram") -> "LabelHistogram":
        """Pointwise sum (useful for aggregate statistics)."""
        counts = Counter(self._counts)
        counts.update(other._counts)
        return LabelHistogram(counts)

    def __getitem__(self, key: tuple) -> int:
        return self._counts.get(key, 0)

    def __len__(self) -> int:
        return len(self._counts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LabelHistogram):
            return NotImplemented
        return self._counts == other._counts

    def __repr__(self) -> str:
        return f"<LabelHistogram {len(self._counts)} distinct labels>"

    def total_vertices(self) -> int:
        """Sum of all vertex-label counts."""
        return sum(c for (kind, _), c in self._counts.items() if kind == _VERTEX)

    def total_edges(self) -> int:
        """Sum of all edge-label counts."""
        return sum(c for (kind, _), c in self._counts.items() if kind == _EDGE)

    def to_dict(self) -> dict:
        return {
            "vertex": {repr(label): c for (kind, label), c in self._counts.items()
                       if kind == _VERTEX},
            "edge": {repr(label): c for (kind, label), c in self._counts.items()
                     if kind == _EDGE},
        }
