"""Structural helper operations on graphs.

These are the workload-side utilities: random connected subgraph extraction
(how the paper generates queries, Section 8.1), breadth-first adjacent
subgraphs (Section 6.1's level-n neighborhoods), and small conveniences used
by generators and tests.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.exceptions import GraphError
from repro.graphs.graph import Graph


def random_connected_subgraph(
    graph: Graph,
    num_vertices: int,
    rng: random.Random,
) -> Graph:
    """Extract a random connected vertex-induced subgraph.

    Mirrors the paper's query generation: "randomly extracting a connected
    subgraph from the graph".  Grows a set from a random start vertex by
    repeatedly absorbing a random neighbor of the current boundary.

    Raises :class:`GraphError` if the graph has no connected subgraph of the
    requested size reachable from any start vertex (e.g. the graph is
    smaller, or too fragmented).
    """
    if num_vertices <= 0:
        raise GraphError("subgraph size must be positive")
    if graph.num_vertices < num_vertices:
        raise GraphError(
            f"graph has {graph.num_vertices} vertices, need {num_vertices}"
        )
    starts = list(graph.vertices())
    rng.shuffle(starts)
    for start in starts:
        chosen = _grow_from(graph, start, num_vertices, rng)
        if chosen is not None:
            return graph.subgraph(chosen)
    raise GraphError(f"no connected subgraph of size {num_vertices} found")


def _grow_from(
    graph: Graph, start: int, num_vertices: int, rng: random.Random
) -> Optional[list[int]]:
    chosen = [start]
    chosen_set = {start}
    boundary = [w for w in graph.neighbors(start)]
    while len(chosen) < num_vertices:
        boundary = [w for w in boundary if w not in chosen_set]
        if not boundary:
            return None
        nxt = rng.choice(boundary)
        chosen.append(nxt)
        chosen_set.add(nxt)
        boundary.extend(w for w in graph.neighbors(nxt) if w not in chosen_set)
    return chosen


def level_n_adjacent_subgraph(graph: Graph, vertex: int, n: int) -> Graph:
    """The level-n adjacent subgraph of ``vertex`` (Section 6.1).

    The vertex-induced subgraph on all vertices within BFS distance ``n`` of
    ``vertex``; vertex 0 of the result corresponds to ``vertex``.
    """
    levels = graph.bfs_levels(vertex, max_level=n)
    ordered = sorted(levels, key=lambda v: (levels[v], v))
    # ``vertex`` has level 0 and the smallest key among level-0 vertices,
    # so it is first.
    return graph.subgraph(ordered)


def disjoint_union(g1: Graph, g2: Graph) -> Graph:
    """The disjoint union of two graphs (g2's ids shifted by |V(g1)|)."""
    g = g1.copy()
    offset = g1.num_vertices
    for v in g2.vertices():
        g.add_vertex(g2.label(v))
    for u, v, label in g2.edges():
        g.add_edge(u + offset, v + offset, label)
    return g


def vertex_permuted(graph: Graph, rng: random.Random) -> Graph:
    """A random isomorphic copy of ``graph`` (vertex ids shuffled)."""
    perm = list(graph.vertices())
    rng.shuffle(perm)
    return graph.relabeled(perm)
