"""Graph substrate: labeled graphs, closures, histograms, mappings, I/O."""

from repro.graphs.closure import (
    EPSILON,
    WILDCARD,
    GraphClosure,
    as_closure,
    closure_under_mapping,
    contains_wildcard,
    labels_match,
)
from repro.graphs.graph import Graph
from repro.graphs.histogram import LabelHistogram
from repro.graphs.labelspace import (
    EPSILON_BIT,
    WILDCARD_BIT,
    LabelSpace,
    TargetContext,
    global_labelspace,
    masks_match,
    reset_labelspace,
    target_context,
)
from repro.graphs.mapping import (
    DUMMY_SET,
    GraphMapping,
    identity_mapping,
    uniform_set_distance,
    uniform_set_similarity,
)

__all__ = [
    "EPSILON",
    "EPSILON_BIT",
    "WILDCARD",
    "WILDCARD_BIT",
    "DUMMY_SET",
    "Graph",
    "GraphClosure",
    "GraphMapping",
    "LabelHistogram",
    "LabelSpace",
    "TargetContext",
    "as_closure",
    "closure_under_mapping",
    "contains_wildcard",
    "global_labelspace",
    "labels_match",
    "masks_match",
    "identity_mapping",
    "reset_labelspace",
    "target_context",
    "uniform_set_distance",
    "uniform_set_similarity",
]
