"""Graph substrate: labeled graphs, closures, histograms, mappings, I/O."""

from repro.graphs.closure import (
    EPSILON,
    WILDCARD,
    GraphClosure,
    as_closure,
    closure_under_mapping,
    contains_wildcard,
    labels_match,
)
from repro.graphs.graph import Graph
from repro.graphs.histogram import LabelHistogram
from repro.graphs.mapping import (
    DUMMY_SET,
    GraphMapping,
    identity_mapping,
    uniform_set_distance,
    uniform_set_similarity,
)

__all__ = [
    "EPSILON",
    "WILDCARD",
    "DUMMY_SET",
    "Graph",
    "GraphClosure",
    "GraphMapping",
    "LabelHistogram",
    "as_closure",
    "closure_under_mapping",
    "contains_wildcard",
    "labels_match",
    "identity_mapping",
    "uniform_set_distance",
    "uniform_set_similarity",
]
