"""Graph mappings and costs under a mapping (Definitions 2-6, 9).

A :class:`GraphMapping` is the extended bijection of Definition 2: every
vertex of both graphs appears in exactly one pair, possibly paired with a
dummy (``None``).  Edit cost (Def. 3), similarity (Def. 6), and subgraph
cost (Eqn. 4) are all computed *under* a given mapping; finding a good
mapping is the job of :mod:`repro.matching`.

All cost functions operate on label **sets** via the shared
``label_set``/``edge_label_set`` protocol, with a dummy represented as the
singleton set ``{ε}``.  With the paper's uniform measure this uniformly
yields:

- exact distance/similarity when both operands are plain graphs
  (singleton sets intersect iff the labels are equal), and
- the *minimum* distance / *maximum* similarity of Definition 9 when either
  operand is a closure (sets intersect iff some member label could match).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

from repro.exceptions import MappingError
from repro.graphs.closure import (
    EPSILON,
    GraphClosure,
    GraphLike,
    closure_under_mapping,
)

DUMMY_SET = frozenset((EPSILON,))

SetMeasure = Callable[[frozenset, frozenset], float]


def uniform_set_distance(s1: frozenset, s2: frozenset) -> float:
    """0 if the label sets can agree on a value, else 1 (uniform measure)."""
    return 0.0 if s1 & s2 else 1.0


def uniform_set_similarity(s1: frozenset, s2: frozenset) -> float:
    """1 if the label sets can agree on a value, else 0 (uniform measure)."""
    return 1.0 if s1 & s2 else 0.0


class GraphMapping:
    """An extended bijection between two graph-like objects.

    Parameters
    ----------
    g1, g2:
        :class:`~repro.graphs.graph.Graph` or
        :class:`~repro.graphs.closure.GraphClosure`.
    pairs:
        Sequence of ``(u, v)`` pairs; ``None`` denotes a dummy.  Every vertex
        of each graph must appear exactly once and no pair may be
        dummy-dummy.
    """

    __slots__ = ("g1", "g2", "pairs", "_forward")

    def __init__(
        self,
        g1: GraphLike,
        g2: GraphLike,
        pairs: Sequence[tuple[Optional[int], Optional[int]]],
    ) -> None:
        self.g1 = g1
        self.g2 = g2
        self.pairs = list(pairs)
        self._forward: dict[int, Optional[int]] = {}
        self._validate()

    @classmethod
    def from_partial(
        cls,
        g1: GraphLike,
        g2: GraphLike,
        partial: dict[int, int],
    ) -> "GraphMapping":
        """Extend a partial injective vertex map with dummy pairings.

        ``partial`` maps (some) vertices of ``g1`` to distinct vertices of
        ``g2``; all remaining vertices on both sides are paired with dummies.
        """
        used2 = set(partial.values())
        if len(used2) != len(partial):
            raise MappingError("partial mapping is not injective")
        pairs: list[tuple[Optional[int], Optional[int]]] = []
        for u in range(_nv(g1)):
            pairs.append((u, partial.get(u)))
        for v in range(_nv(g2)):
            if v not in used2:
                pairs.append((None, v))
        return cls(g1, g2, pairs)

    def _validate(self) -> None:
        seen1: set[int] = set()
        seen2: set[int] = set()
        n1, n2 = _nv(self.g1), _nv(self.g2)
        for u, v in self.pairs:
            if u is None and v is None:
                raise MappingError("mapping pair is dummy on both sides")
            if u is not None:
                if not 0 <= u < n1 or u in seen1:
                    raise MappingError(f"bad first-graph vertex {u}")
                seen1.add(u)
                self._forward[u] = v
            if v is not None:
                if not 0 <= v < n2 or v in seen2:
                    raise MappingError(f"bad second-graph vertex {v}")
                seen2.add(v)
        if len(seen1) != n1 or len(seen2) != n2:
            raise MappingError("mapping must cover all vertices of both graphs")

    # ------------------------------------------------------------------
    def image(self, u: int) -> Optional[int]:
        """The image of first-graph vertex ``u`` (None if paired to dummy)."""
        return self._forward[u]

    def matched_pairs(self) -> dict[int, int]:
        """The non-dummy part of the mapping as a dict ``u -> v``."""
        return {u: v for u, v in self.pairs if u is not None and v is not None}

    # ------------------------------------------------------------------
    # Costs under this mapping
    # ------------------------------------------------------------------
    def edit_cost(
        self,
        vertex_distance: SetMeasure = uniform_set_distance,
        edge_distance: SetMeasure = uniform_set_distance,
    ) -> float:
        """Edit distance under this mapping (Definition 3).

        With closures as operands this is the minimum distance of
        Definition 9 *under this mapping*.
        """
        cost = 0.0
        for u, v in self.pairs:
            s1 = self.g1.label_set(u) if u is not None else DUMMY_SET
            s2 = self.g2.label_set(v) if v is not None else DUMMY_SET
            cost += vertex_distance(s1, s2)
        for s1, s2 in self._edge_pairs():
            cost += edge_distance(s1, s2)
        return cost

    def similarity(
        self,
        vertex_similarity: SetMeasure = uniform_set_similarity,
        edge_similarity: SetMeasure = uniform_set_similarity,
    ) -> float:
        """Similarity under this mapping (Definition 6)."""
        total = 0.0
        for u, v in self.pairs:
            if u is None or v is None:
                continue  # dummy pairings contribute 0 under any sim measure
            total += vertex_similarity(self.g1.label_set(u), self.g2.label_set(v))
        for s1, s2 in self._edge_pairs():
            if s1 is not DUMMY_SET and s2 is not DUMMY_SET:
                total += edge_similarity(s1, s2)
        return total

    def subgraph_cost(
        self,
        vertex_distance: SetMeasure = uniform_set_distance,
        edge_distance: SetMeasure = uniform_set_distance,
    ) -> float:
        """Subgraph distance under this mapping (Eqn. 4).

        Counts only the first graph's real vertices and edges — extra
        structure in ``g2`` is free, matching Definition 5.
        """
        cost = 0.0
        for u, v in self.pairs:
            if u is None:
                continue
            s2 = self.g2.label_set(v) if v is not None else DUMMY_SET
            cost += vertex_distance(self.g1.label_set(u), s2)
        for (a, b, s1) in _edge_iter(self.g1):
            va, vb = self._forward[a], self._forward[b]
            if va is not None and vb is not None and self.g2.has_edge(va, vb):
                s2 = self.g2.edge_label_set(va, vb)
            else:
                s2 = DUMMY_SET
            cost += edge_distance(s1, s2)
        return cost

    def closure(self) -> GraphClosure:
        """The graph closure of the two graphs under this mapping (Def. 8)."""
        return closure_under_mapping(self.g1, self.g2, self.pairs)

    # ------------------------------------------------------------------
    def _edge_pairs(self) -> Iterable[tuple[frozenset, frozenset]]:
        """Yield ``(label_set_1, label_set_2)`` for every edge pair of the
        extended graphs; an absent side is :data:`DUMMY_SET`."""
        backward: dict[int, int] = {}
        for u, v in self.pairs:
            if u is not None and v is not None:
                backward[v] = u
        g1, g2 = self.g1, self.g2
        for (a, b, s1) in _edge_iter(g1):
            va, vb = self._forward[a], self._forward[b]
            if va is not None and vb is not None and g2.has_edge(va, vb):
                yield (s1, g2.edge_label_set(va, vb))
            else:
                yield (s1, DUMMY_SET)
        for (x, y, s2) in _edge_iter(g2):
            a, b = backward.get(x), backward.get(y)
            if a is None or b is None or not g1.has_edge(a, b):
                yield (DUMMY_SET, s2)
            # else: already yielded from the g1 loop

    def __repr__(self) -> str:
        matched = sum(1 for u, v in self.pairs if u is not None and v is not None)
        return f"<GraphMapping pairs={len(self.pairs)} matched={matched}>"


def _nv(g: GraphLike) -> int:
    return g.num_vertices


def _edge_iter(g: GraphLike) -> Iterable[tuple[int, int, frozenset]]:
    """Iterate edges of a graph or closure as ``(u, v, label_set)``."""
    if isinstance(g, GraphClosure):
        yield from g.edges()
    else:
        for u, v, label in g.edges():
            yield (u, v, frozenset((label,)))


def identity_mapping(g1: GraphLike, g2: GraphLike) -> GraphMapping:
    """Map vertex ``i`` of ``g1`` to vertex ``i`` of ``g2`` (by id), padding
    the larger graph with dummies.  Useful as a baseline in tests."""
    n1, n2 = _nv(g1), _nv(g2)
    partial = {i: i for i in range(min(n1, n2))}
    return GraphMapping.from_partial(g1, g2, partial)
