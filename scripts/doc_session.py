#!/usr/bin/env python
"""Run the worked ``curl`` session from ``docs/SERVING.md`` verbatim.

Doc-as-test: the serving guide's "Worked curl session" section is the
executable specification of the HTTP API.  This script extracts every
fenced ``bash`` code block under that heading and executes them, in
order, as one ``bash -euo pipefail`` script — so if the documentation
drifts from the server, the CI ``serve-smoke`` job (and the local
``tests/test_serving_docs.py``) fails.

The session expects a server already listening on
``localhost:${REPRO_PORT:-8744}`` (CI boots ``repro serve`` around it).

Usage::

    python scripts/doc_session.py              # extract + run
    python scripts/doc_session.py --print      # just show the script
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC = REPO_ROOT / "docs" / "SERVING.md"
HEADING = "## Worked curl session"

_FENCE = re.compile(r"^```(\w*)\s*$")


def extract_session(text: str) -> str:
    """The concatenated ``bash`` blocks under the session heading."""
    lines = text.splitlines()
    blocks: list[str] = []
    in_section = False
    in_block = False
    current: list[str] = []
    for line in lines:
        if line.startswith("## "):
            in_section = line.strip() == HEADING
            continue
        if not in_section:
            continue
        fence = _FENCE.match(line)
        if fence and not in_block:
            if fence.group(1) == "bash":
                in_block = True
                current = []
            continue
        if in_block:
            if line.strip() == "```":
                in_block = False
                blocks.append("\n".join(current))
            else:
                current.append(line)
    if not blocks:
        raise SystemExit(
            f"{DOC}: no bash blocks found under {HEADING!r}"
        )
    return "\n\n".join(blocks)


def main(argv=None) -> int:
    """Extract the documented session and run (or print) it."""
    args = sys.argv[1:] if argv is None else argv
    session = extract_session(DOC.read_text(encoding="utf-8"))
    script = "set -euo pipefail\n" + session + "\n"
    if "--print" in args:
        print(script, end="")
        return 0
    print(f"[doc_session] running {HEADING!r} from {DOC}", flush=True)
    result = subprocess.run(["bash", "-c", script], cwd=REPO_ROOT)
    if result.returncode == 0:
        print("[doc_session] session passed")
    return result.returncode


if __name__ == "__main__":
    sys.exit(main())
