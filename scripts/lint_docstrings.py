#!/usr/bin/env python
"""Docstring lint for the documented serving + storage surface.

A dependency-free, ``pydocstyle``-style checker (AST-based, stdlib only)
that fails when any *public* module, class, function, or method in the
audited paths lacks a docstring, or when a docstring has an empty
summary line.  CI runs it (plus ``ruff``'s pydocstyle ``D1`` rules,
which this mirrors) over the serving layer (``src/repro/server/``,
``src/repro/ctree/parallel.py``) and the durable-storage/insert surface
(``src/repro/storage/``, ``src/repro/ctree/diskindex.py``,
``src/repro/ctree/policies.py``) so the API references in
``docs/SERVING.md`` and ``docs/DURABILITY.md`` cannot silently rot;
``tests/test_docstrings.py`` enforces the same contract inside tier-1.

Usage::

    python scripts/lint_docstrings.py [path ...]

With no arguments, lints the default serving surface.  Exits non-zero
listing every violation as ``path:line: message``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The documented serving surface (see ISSUE/PR 6) — the whole HTTP
#: layer, the batched engine, the Prometheus exporter — plus the
#: durable-storage/insert surface (PR 8): page file, WAL, buffer pool,
#: record store, the disk index with its incremental append path, and
#: the insert/split policies.
DEFAULT_PATHS = (
    "src/repro/server",
    "src/repro/ctree/parallel.py",
    "src/repro/obs/prometheus.py",
    "src/repro/storage",
    "src/repro/ctree/diskindex.py",
    "src/repro/ctree/policies.py",
    "src/repro/ctree/shards.py",
    "src/repro/ctree/shardcache.py",
)


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _check_docstring(node, kind: str, name: str,
                     violations: list[tuple[int, str]]) -> None:
    doc = ast.get_docstring(node, clean=False)
    lineno = getattr(node, "lineno", 1)
    if doc is None:
        violations.append(
            (lineno, f"missing docstring on public {kind} {name!r}")
        )
        return
    first_line = doc.strip().splitlines()[0] if doc.strip() else ""
    if not first_line:
        violations.append(
            (lineno, f"empty docstring summary on {kind} {name!r}")
        )


def lint_file(path: Path) -> list[tuple[int, str]]:
    """All docstring violations in one file, as ``(line, message)``."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    violations: list[tuple[int, str]] = []
    _check_docstring(tree, "module", path.name, violations)
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            if not _is_public(node.name):
                continue
            _check_docstring(node, "class", node.name, violations)
            for item in node.body:
                if (isinstance(item, (ast.FunctionDef,
                                      ast.AsyncFunctionDef))
                        and _is_public(item.name)):
                    _check_docstring(
                        item, "method", f"{node.name}.{item.name}",
                        violations,
                    )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Only module-level functions here; methods are handled via
            # their class so nested helpers stay exempt.
            if _is_public(node.name) and node.col_offset == 0:
                _check_docstring(node, "function", node.name, violations)
    return violations


def lint_paths(paths) -> list[str]:
    """Lint files/directories; returns formatted violation lines."""
    out: list[str] = []
    for spec in paths:
        root = Path(spec)
        if not root.is_absolute():
            root = REPO_ROOT / root
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for file in files:
            for lineno, message in lint_file(file):
                rel = file.relative_to(REPO_ROOT) \
                    if file.is_relative_to(REPO_ROOT) else file
                out.append(f"{rel}:{lineno}: {message}")
    return out


def main(argv=None) -> int:
    """CLI entry point: lint the given (or default) paths."""
    args = (argv if argv is not None else sys.argv[1:]) or DEFAULT_PATHS
    violations = lint_paths(args)
    for line in violations:
        print(line)
    if violations:
        print(f"{len(violations)} docstring violation(s)", file=sys.stderr)
        return 1
    print("docstring lint clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
