"""Legacy setup shim.

The environment this project ships in has no network and no ``wheel``
package, so modern PEP-517 editable installs fail.  This shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` work everywhere;
all real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
