#!/usr/bin/env python
"""Synthetic-workload walkthrough: generator, cost model, persistence.

Reproduces the paper's synthetic-dataset setup (Kuramochi-Karypis
parameters S=100, I=10, T=50, L=10, scaled down), runs subgraph queries,
fits the Section 6.3 cost model to the observed traversal statistics, and
shows the estimated vs actual access ratio — Fig. 9(b) in miniature.
Finally persists the index and reloads it.

Run with:  python examples/synthetic_workload.py
"""

import tempfile
from pathlib import Path

from repro import bulk_load, load_tree, save_tree, subgraph_query
from repro.ctree import QueryStats, fit_from_stats, mean_fanout
from repro.datasets import (
    SyntheticConfig,
    generate_subgraph_queries,
    generate_synthetic_database,
)

config = SyntheticConfig(
    num_graphs=100,       # paper: 10,000
    num_seeds=100,        # S
    seed_mean_size=10.0,  # I
    graph_mean_size=50.0, # T
    num_labels=10,        # L
)
print(f"generating synthetic database (D={config.num_graphs}, S=100, "
      f"I=10, T=50, L=10)...")
graphs = generate_synthetic_database(config, seed=3)
avg = sum(g.num_vertices for g in graphs) / len(graphs)
print(f"  avg |V|={avg:.1f}")

tree = bulk_load(graphs, min_fanout=10)
print(f"built {tree}")

# ----------------------------------------------------------------------
# Query sweep + cost model (Sec. 6.3).
# ----------------------------------------------------------------------
print(f"\n{'query size':>10} {'answers':>8} {'gamma actual':>13} "
      f"{'gamma estimated':>16}")
for size in (5, 10, 15):
    queries = generate_subgraph_queries(graphs, size, 5, seed=size)
    merged = QueryStats()
    for q in queries:
        _, stats = subgraph_query(tree, q, level=1)
        merged.merge(stats)
    model = fit_from_stats(merged, fanout=mean_fanout(tree))
    actual = merged.access_ratio / len(queries)
    print(f"{size:>10} {merged.answers / len(queries):>8.1f} "
          f"{actual:>13.2%} {model.estimated_access_ratio():>16.2%}")

print("\naccess ratio falls with query size (bigger motifs prune harder),"
      "\nand the fitted Eqn. 11-13 model tracks the measured curve.")

# ----------------------------------------------------------------------
# Persistence round trip.
# ----------------------------------------------------------------------
with tempfile.TemporaryDirectory() as tmp:
    path = Path(tmp) / "synthetic.ctree.json"
    written = save_tree(tree, path)
    reloaded = load_tree(path)
    print(f"\npersisted index: {written} bytes; reloaded |D|={len(reloaded)}")
    q = generate_subgraph_queries(graphs, 8, 1, seed=99)[0]
    a1, _ = subgraph_query(tree, q)
    a2, _ = subgraph_query(reloaded, q)
    assert sorted(a1) == sorted(a2)
    print("reloaded index answers the same queries. done.")
