#!/usr/bin/env python
"""Quickstart: index a handful of graphs and run every query type.

Run with:  python examples/quickstart.py
"""

from repro import CTree, Graph, knn_query, range_query, subgraph_query

# ----------------------------------------------------------------------
# 1. Build a tiny graph database: a few molecules, hand-drawn.
# ----------------------------------------------------------------------
ethanol = Graph(["C", "C", "O"], [(0, 1), (1, 2)], name="ethanol")
acetic_acid = Graph(
    ["C", "C", "O", "O"], [(0, 1), (1, 2), (1, 3)], name="acetic acid"
)
glycine = Graph(
    ["N", "C", "C", "O", "O"], [(0, 1), (1, 2), (2, 3), (2, 4)], name="glycine"
)
benzene = Graph(
    ["C"] * 6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)], name="benzene"
)
phenol = Graph(
    ["C"] * 6 + ["O"],
    [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 6)],
    name="phenol",
)

tree = CTree(min_fanout=2)  # tiny fanout for a tiny database
for molecule in (ethanol, acetic_acid, glycine, benzene, phenol):
    gid = tree.insert(molecule)
    print(f"inserted #{gid}: {molecule.name}")

print(f"\nindex: {tree}")

# ----------------------------------------------------------------------
# 2. Subgraph query: which molecules contain a C-O bond?
# ----------------------------------------------------------------------
c_o_bond = Graph(["C", "O"], [(0, 1)])
answers, stats = subgraph_query(tree, c_o_bond)
names = [tree.get(gid).name for gid in answers]
print(f"\ngraphs containing a C-O bond: {sorted(names)}")
print(f"  candidates={stats.candidates} answers={stats.answers} "
      f"accuracy={stats.accuracy:.0%}")

# A carboxyl pattern (C bonded to two O): only acetic acid and glycine.
carboxyl = Graph(["C", "O", "O"], [(0, 1), (0, 2)])
answers, _ = subgraph_query(tree, carboxyl)
print(f"graphs containing a carboxyl group: "
      f"{sorted(tree.get(g).name for g in answers)}")

# ----------------------------------------------------------------------
# 3. Similarity queries.
# ----------------------------------------------------------------------
results, _ = knn_query(tree, phenol, k=2)
print("\n2 nearest neighbors of phenol:")
for gid, similarity in results:
    print(f"  {tree.get(gid).name:12s} similarity={similarity:.0f}")

in_range, _ = range_query(tree, ethanol, radius=4.0)
print("\ngraphs within edit distance 4 of ethanol:")
for gid, distance in in_range:
    print(f"  {tree.get(gid).name:12s} distance={distance:.0f}")

# ----------------------------------------------------------------------
# 4. Dynamic updates.
# ----------------------------------------------------------------------
removed = tree.delete(0)
print(f"\ndeleted {removed.name}; |D| is now {len(tree)}")
answers, _ = subgraph_query(tree, c_o_bond)
print(f"C-O bond answers after deletion: "
      f"{sorted(tree.get(g).name for g in answers)}")
