#!/usr/bin/env python
"""Structural motif search over a compound database (subgraph queries).

The scenario from the paper's introduction: a chemist wants every compound
containing a given structural motif.  We generate an AIDS-screen-like
database, index it with both C-tree and GraphGrep, and compare their
filtering power on the same motif queries — a miniature of Figs. 7-8.

Run with:  python examples/chemical_motif_search.py
"""

import time

from repro import GraphGrepIndex, bulk_load, index_size_bytes, subgraph_query
from repro.datasets import generate_chemical_database, generate_subgraph_queries

DATABASE_SIZE = 150
QUERY_SIZES = (5, 10, 15)
QUERIES_PER_SIZE = 5

print(f"generating {DATABASE_SIZE} compounds...")
compounds = generate_chemical_database(DATABASE_SIZE, seed=2026)
avg_v = sum(g.num_vertices for g in compounds) / len(compounds)
avg_e = sum(g.num_edges for g in compounds) / len(compounds)
print(f"  avg |V|={avg_v:.1f}, avg |E|={avg_e:.1f}")

print("\nbuilding indexes...")
start = time.perf_counter()
tree = bulk_load(compounds, min_fanout=10)
ctree_seconds = time.perf_counter() - start
start = time.perf_counter()
graphgrep = GraphGrepIndex.build(compounds, lp=4)
gg_seconds = time.perf_counter() - start
print(f"  C-tree:    {ctree_seconds:6.2f}s, {index_size_bytes(tree):>9} bytes, "
      f"height={tree.height()}, nodes={tree.node_count()}")
print(f"  GraphGrep: {gg_seconds:6.2f}s, {graphgrep.index_size_bytes():>9} bytes "
      f"(lp=4, fp=256)")

header = (f"{'motif size':>10} {'answers':>8} {'C-tree |CS|':>12} "
          f"{'GraphGrep |CS|':>15} {'C-tree acc':>11} {'GG acc':>7}")
print("\n" + header)
print("-" * len(header))

for size in QUERY_SIZES:
    motifs = generate_subgraph_queries(
        compounds, size, QUERIES_PER_SIZE, seed=size
    )
    totals = {"ans": 0, "ct_cs": 0, "gg_cs": 0, "ct_ans": 0, "gg_ans": 0}
    for motif in motifs:
        answers, stats = subgraph_query(tree, motif, level="max")
        gg_answers, gg_stats = graphgrep.query(motif)
        assert sorted(answers) == sorted(gg_answers), "indexes disagree!"
        totals["ans"] += len(answers)
        totals["ct_cs"] += stats.candidates
        totals["gg_cs"] += gg_stats.candidates
    n = len(motifs)
    ct_acc = totals["ans"] / totals["ct_cs"] if totals["ct_cs"] else 1.0
    gg_acc = totals["ans"] / totals["gg_cs"] if totals["gg_cs"] else 1.0
    print(f"{size:>10} {totals['ans'] / n:>8.1f} {totals['ct_cs'] / n:>12.1f} "
          f"{totals['gg_cs'] / n:>15.1f} {ct_acc:>10.0%} {gg_acc:>6.0%}")

print("\nC-tree candidates approach the true answer set (the paper's"
      " ~100% accuracy at level=MAX); GraphGrep keeps more false"
      " positives that exact isomorphism must then reject.")
