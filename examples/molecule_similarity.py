#!/usr/bin/env python
"""Similarity search over molecules: K-NN, range queries, mapping quality.

The paper's Section 7 use case: find the compounds most similar to a query
molecule (the building block for classification and clustering), and
compare the two heuristic graph-mapping methods the paper evaluates in
Fig. 10.

Run with:  python examples/molecule_similarity.py
"""

from repro import bulk_load, knn_query, range_query
from repro.datasets import generate_chemical_database
from repro.matching import (
    bipartite_mapping,
    graph_distance,
    nbm_mapping,
    sim_upper_bound,
)

DATABASE_SIZE = 120

print(f"generating {DATABASE_SIZE} compounds and building a C-tree...")
compounds = generate_chemical_database(DATABASE_SIZE, seed=7)
tree = bulk_load(compounds, min_fanout=8)

# ----------------------------------------------------------------------
# K-NN: the 5 compounds most similar to compound #17.
# ----------------------------------------------------------------------
query = compounds[17]
print(f"\nquery: {query.name} (|V|={query.num_vertices}, |E|={query.num_edges})")
results, stats = knn_query(tree, query, k=5)
print("5 nearest neighbors (by approximate graph similarity):")
for rank, (gid, similarity) in enumerate(results, start=1):
    g = tree.get(gid)
    print(f"  {rank}. {g.name:14s} sim={similarity:5.1f} "
          f"(|V|={g.num_vertices}, |E|={g.num_edges})")
print(f"accessed {stats.access_ratio:.0%} of the database "
      f"({stats.graphs_scored} graphs scored, {stats.pruned_by_bound} pruned)")

# ----------------------------------------------------------------------
# Range query: everything within edit distance 6.
# ----------------------------------------------------------------------
in_range, rstats = range_query(tree, query, radius=6.0)
print(f"\ncompounds within edit distance 6: "
      f"{[(tree.get(g).name, d) for g, d in in_range]}")
print(f"  ({rstats.pruned_by_bound} subtrees pruned by the closure bound)")

# ----------------------------------------------------------------------
# Mapping quality (Fig. 10 in miniature): how close do NBM and the
# bipartite method get to the Eqn. (7) upper bound?
# ----------------------------------------------------------------------
print("\nmapping quality on 50 random pairs (similarity / upper bound):")
nbm_total = bip_total = count = 0.0
for i in range(10):
    for j in range(50, 55):
        g1, g2 = compounds[i], compounds[j]
        upper = sim_upper_bound(g1, g2)
        if upper == 0:
            continue
        nbm_total += nbm_mapping(g1, g2).similarity() / upper
        bip_total += bipartite_mapping(g1, g2).similarity() / upper
        count += 1
print(f"  NBM (Alg. 1):        {nbm_total / count:.2f}")
print(f"  bipartite (Sec 4.2): {bip_total / count:.2f}")
print("NBM's neighbor bias finds more of the common substructure, matching"
      " the paper's Fig. 10 ordering.")

# ----------------------------------------------------------------------
# Pairwise distances are symmetric up to heuristic noise.
# ----------------------------------------------------------------------
d_ab = graph_distance(compounds[0], compounds[1])
d_ba = graph_distance(compounds[1], compounds[0])
print(f"\nheuristic distances: d(0,1)={d_ab:.0f}, d(1,0)={d_ba:.0f} "
      "(equal in most cases; both upper-bound the true edit distance)")
